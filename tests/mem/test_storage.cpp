#include "mem/storage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace hmcsim {
namespace {

TEST(SparseStore, UnwrittenMemoryReadsZero) {
  SparseStore store(1 << 20);
  std::vector<u8> buf(64, 0xFF);
  ASSERT_TRUE(store.read(0x1234, buf));
  for (const u8 b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(store.resident_pages(), 0u);  // reads must not materialize pages
}

TEST(SparseStore, WriteReadRoundTrip) {
  SparseStore store(1 << 20);
  std::vector<u8> data(64);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3);
  ASSERT_TRUE(store.write(0x400, data));
  std::vector<u8> back(64);
  ASSERT_TRUE(store.read(0x400, back));
  EXPECT_EQ(back, data);
}

TEST(SparseStore, PageStraddlingAccess) {
  SparseStore store(1 << 20);
  std::vector<u8> data(256);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  // Write across the 4 KiB page boundary.
  const u64 addr = SparseStore::kPageBytes - 100;
  ASSERT_TRUE(store.write(addr, data));
  EXPECT_EQ(store.resident_pages(), 2u);
  std::vector<u8> back(256);
  ASSERT_TRUE(store.read(addr, back));
  EXPECT_EQ(back, data);
}

TEST(SparseStore, OutOfRangeRejected) {
  SparseStore store(4096);
  std::vector<u8> buf(16);
  EXPECT_FALSE(store.read(4096, buf));
  EXPECT_FALSE(store.write(4090, buf));  // spills past the end
  EXPECT_TRUE(store.write(4080, buf));   // exactly reaches the end
}

TEST(SparseStore, OverflowingRangeRejected) {
  SparseStore store(~u64{0});
  std::vector<u8> buf(16);
  EXPECT_FALSE(store.read(~u64{0} - 4, buf));  // addr + size wraps
}

TEST(SparseStore, WordHelpersAreLittleEndian) {
  SparseStore store(1 << 16);
  const u64 word = 0x0123456789abcdefull;
  ASSERT_TRUE(store.write_words(0x100, {&word, 1}));
  std::vector<u8> bytes(8);
  ASSERT_TRUE(store.read(0x100, bytes));
  EXPECT_EQ(bytes[0], 0xef);
  EXPECT_EQ(bytes[7], 0x01);
  u64 back = 0;
  ASSERT_TRUE(store.read_words(0x100, {&back, 1}));
  EXPECT_EQ(back, word);
}

TEST(SparseStore, PartialOverwrite) {
  SparseStore store(1 << 16);
  std::vector<u8> a(32, 0xAA);
  ASSERT_TRUE(store.write(0, a));
  std::vector<u8> b(8, 0xBB);
  ASSERT_TRUE(store.write(8, b));
  std::vector<u8> back(32);
  ASSERT_TRUE(store.read(0, back));
  for (usize i = 0; i < 32; ++i) {
    EXPECT_EQ(back[i], (i >= 8 && i < 16) ? 0xBB : 0xAA) << i;
  }
}

TEST(SparseStore, ClearReleasesPagesAndZeroes) {
  SparseStore store(1 << 20);
  std::vector<u8> data(16, 0x5A);
  ASSERT_TRUE(store.write(0, data));
  EXPECT_GT(store.resident_pages(), 0u);
  store.clear();
  EXPECT_EQ(store.resident_pages(), 0u);
  std::vector<u8> back(16, 0xFF);
  ASSERT_TRUE(store.read(0, back));
  for (const u8 b : back) EXPECT_EQ(b, 0);
}

TEST(SparseStore, SparsityLargeCapacitySmallFootprint) {
  // An 8 GB device with a handful of touched blocks must stay tiny.
  SparseStore store(u64{8} << 30);
  SplitMix64 rng(1);
  for (int i = 0; i < 100; ++i) {
    const u64 addr = (rng.next_below(store.capacity() / 64)) * 64;
    const u64 word = rng.next();
    ASSERT_TRUE(store.write_words(addr, {&word, 1}));
  }
  EXPECT_LE(store.resident_pages(), 100u);
}

TEST(SparseStore, RandomizedReadYourWrites) {
  SparseStore store(1 << 22);
  SplitMix64 rng(99);
  // Model: shadow map of written 16-byte blocks.
  std::vector<std::pair<u64, std::array<u64, 2>>> shadow;
  for (int i = 0; i < 500; ++i) {
    const u64 addr = rng.next_below(store.capacity() / 16) * 16;
    const std::array<u64, 2> value = {rng.next(), rng.next()};
    ASSERT_TRUE(store.write_words(addr, value));
    shadow.emplace_back(addr, value);
  }
  // Later writes to the same block win; walk the shadow log backwards.
  for (auto it = shadow.rbegin(); it != shadow.rend(); ++it) {
    bool superseded = false;
    for (auto jt = shadow.rbegin(); jt != it; ++jt) {
      if (jt->first == it->first) {
        superseded = true;
        break;
      }
    }
    if (superseded) continue;
    std::array<u64, 2> back{};
    ASSERT_TRUE(store.read_words(it->first, back));
    EXPECT_EQ(back, it->second);
  }
}

}  // namespace
}  // namespace hmcsim
