#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/limits.hpp"
#include "common/random.hpp"

namespace hmcsim {
namespace {

Geometry geom_4link_8bank() { return Geometry{16, 8, 8, spec::kBankBytes}; }
Geometry geom_8link_16bank() { return Geometry{32, 16, 8, spec::kBankBytes}; }

TEST(Geometry, CapacityMatchesPaperConfigs) {
  EXPECT_EQ(geom_4link_8bank().capacity_bytes(), u64{2} << 30);   // 2 GB
  EXPECT_EQ(geom_8link_16bank().capacity_bytes(), u64{8} << 30);  // 8 GB
  EXPECT_EQ((Geometry{16, 16, 8, spec::kBankBytes}).capacity_bytes(),
            u64{4} << 30);
  EXPECT_EQ((Geometry{32, 8, 8, spec::kBankBytes}).capacity_bytes(),
            u64{4} << 30);
}

TEST(Geometry, AddrBits) {
  EXPECT_EQ(geom_4link_8bank().addr_bits(), 31u);
  EXPECT_EQ(geom_8link_16bank().addr_bits(), 33u);
}

TEST(AddressMap, DefaultConstructedIsInvalid) {
  AddressMap map;
  EXPECT_FALSE(map.valid());
  DecodedAddr d;
  EXPECT_EQ(map.decode(0, d), Status::InvalidConfig);
}

TEST(AddressMap, LowInterleaveIsValidForAllPaperConfigs) {
  for (const auto& g : {geom_4link_8bank(), geom_8link_16bank(),
                        Geometry{16, 16, 8, spec::kBankBytes},
                        Geometry{32, 8, 8, spec::kBankBytes}}) {
    for (const u64 block : {32u, 64u, 128u, 256u}) {
      const AddressMap map = AddressMap::low_interleave(g, block);
      EXPECT_TRUE(map.valid()) << map.error();
      EXPECT_EQ(map.max_block_bytes(), block);
    }
  }
}

TEST(AddressMap, LowInterleaveVaultBitsAreLowest) {
  // Sequential block-sized addresses must first interleave across vaults,
  // then across banks within a vault, to avoid bank conflicts (§III.B).
  const AddressMap map = AddressMap::low_interleave(geom_4link_8bank(), 64);
  for (u64 i = 0; i < 16; ++i) {
    EXPECT_EQ(map.vault_of(i * 64), i) << "block " << i;
    EXPECT_EQ(map.bank_of(i * 64), 0u);
  }
  // After all 16 vaults, the bank increments.
  EXPECT_EQ(map.vault_of(16 * 64), 0u);
  EXPECT_EQ(map.bank_of(16 * 64), 1u);
  EXPECT_EQ(map.bank_of(16 * 64 * 8), 0u);  // banks wrap after 8
}

TEST(AddressMap, BankFirstBankBitsAreLowest) {
  const AddressMap map = AddressMap::bank_first(geom_4link_8bank(), 64);
  ASSERT_TRUE(map.valid());
  for (u64 i = 0; i < 8; ++i) {
    EXPECT_EQ(map.bank_of(i * 64), i);
    EXPECT_EQ(map.vault_of(i * 64), 0u);
  }
  EXPECT_EQ(map.vault_of(8 * 64), 1u);
}

TEST(AddressMap, LinearKeepsContiguousRegionsInOneBank) {
  const AddressMap map = AddressMap::linear(geom_4link_8bank(), 64);
  ASSERT_TRUE(map.valid());
  // A multi-megabyte contiguous region stays in vault 0 / bank 0.
  for (u64 addr = 0; addr < (u64{1} << 20); addr += 4096) {
    EXPECT_EQ(map.vault_of(addr), 0u);
    EXPECT_EQ(map.bank_of(addr), 0u);
  }
}

TEST(AddressMap, DecodeRejectsOutOfRange) {
  const AddressMap map = AddressMap::low_interleave(geom_4link_8bank(), 64);
  DecodedAddr d;
  EXPECT_EQ(map.decode(map.geometry().capacity_bytes(), d),
            Status::InvalidArgument);
  EXPECT_EQ(map.decode(map.geometry().capacity_bytes() - 1, d), Status::Ok);
}

TEST(AddressMap, DecodeCoordinatesAreInRange) {
  const AddressMap map = AddressMap::low_interleave(geom_8link_16bank(), 128);
  SplitMix64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const PhysAddr addr = rng.next_below(map.geometry().capacity_bytes());
    DecodedAddr d;
    ASSERT_EQ(map.decode(addr, d), Status::Ok);
    EXPECT_LT(d.vault.get(), map.geometry().vaults);
    EXPECT_LT(d.bank.get(), map.geometry().banks);
    EXPECT_LT(d.dram.get(), map.geometry().drams);
    EXPECT_LT(d.offset, map.max_block_bytes());
  }
}

TEST(AddressMap, FastPathAgreesWithDecode) {
  for (const auto mode : {0, 1, 2}) {
    const Geometry g = geom_8link_16bank();
    const AddressMap map = mode == 0   ? AddressMap::low_interleave(g, 64)
                           : mode == 1 ? AddressMap::bank_first(g, 64)
                                       : AddressMap::linear(g, 64);
    ASSERT_TRUE(map.valid());
    SplitMix64 rng(static_cast<u64>(mode) + 1);
    for (int i = 0; i < 2000; ++i) {
      const PhysAddr addr = rng.next_below(g.capacity_bytes());
      DecodedAddr d;
      ASSERT_EQ(map.decode(addr, d), Status::Ok);
      EXPECT_EQ(map.vault_of(addr), d.vault.get());
      EXPECT_EQ(map.bank_of(addr), d.bank.get());
    }
  }
}

// Bijectivity: encode(decode(addr)) == addr, for every built-in mode and
// every paper geometry.
class AddressMapBijection
    : public ::testing::TestWithParam<std::tuple<int, int, u64>> {};

TEST_P(AddressMapBijection, EncodeInvertsDecode) {
  const auto [geom_index, mode, block] = GetParam();
  const Geometry g = geom_index == 0   ? geom_4link_8bank()
                     : geom_index == 1 ? Geometry{16, 16, 8, spec::kBankBytes}
                     : geom_index == 2 ? Geometry{32, 8, 8, spec::kBankBytes}
                                       : geom_8link_16bank();
  const AddressMap map = mode == 0   ? AddressMap::low_interleave(g, block)
                         : mode == 1 ? AddressMap::bank_first(g, block)
                                     : AddressMap::linear(g, block);
  ASSERT_TRUE(map.valid()) << map.error();

  SplitMix64 rng(u64(geom_index) * 31 + u64(mode) * 7 + block);
  for (int i = 0; i < 3000; ++i) {
    const PhysAddr addr = rng.next_below(g.capacity_bytes());
    DecodedAddr d;
    ASSERT_EQ(map.decode(addr, d), Status::Ok);
    PhysAddr back = 0;
    ASSERT_EQ(map.encode(d, back), Status::Ok);
    ASSERT_EQ(back, addr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AddressMapBijection,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(u64{32}, u64{64}, u64{128})));

TEST(AddressMap, DistinctAddressesDistinctCoordinates) {
  // decode must be injective: sample addresses, ensure no coordinate tuple
  // repeats (follows from bijectivity, but cheap to check directly).
  const AddressMap map = AddressMap::low_interleave(geom_4link_8bank(), 32);
  std::set<std::tuple<u32, u32, u32, u64, u64>> seen;
  SplitMix64 rng(3);
  std::set<PhysAddr> addrs;
  while (addrs.size() < 2000) {
    addrs.insert(rng.next_below(map.geometry().capacity_bytes()));
  }
  for (const PhysAddr a : addrs) {
    DecodedAddr d;
    ASSERT_EQ(map.decode(a, d), Status::Ok);
    EXPECT_TRUE(seen.emplace(d.vault.get(), d.bank.get(), d.dram.get(), d.row,
                             d.offset)
                    .second);
  }
}

TEST(AddressMap, UniformRandomSpreadsAcrossVaults) {
  // Statistical sanity backing the paper's workload: uniform addresses load
  // every vault within ~3 sigma.
  const AddressMap map = AddressMap::low_interleave(geom_4link_8bank(), 64);
  std::array<u32, 16> counts{};
  GlibcRandom rng(1);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    const u64 block = (static_cast<u64>(rng.next()) << 31 | rng.next()) %
                      (map.geometry().capacity_bytes() / 64);
    ++counts[map.vault_of(block * 64)];
  }
  for (const u32 c : counts) {
    EXPECT_NEAR(c, kDraws / 16, 3 * 64);  // ~3 sigma of binomial
  }
}

TEST(AddressMap, RejectsInconsistentFieldWidths) {
  const Geometry g = geom_4link_8bank();
  // Vault field too narrow.
  AddressMap bad(g, {{AddrField::Offset, 5},
                     {AddrField::Vault, 3},
                     {AddrField::Bank, 3},
                     {AddrField::Dram, 3},
                     {AddrField::Row, 17}});
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(bad.error().empty());
}

TEST(AddressMap, RejectsWrongTotalWidth) {
  const Geometry g = geom_4link_8bank();
  AddressMap bad(g, {{AddrField::Offset, 5},
                     {AddrField::Vault, 4},
                     {AddrField::Bank, 3},
                     {AddrField::Dram, 3},
                     {AddrField::Row, 10}});  // 25 != 31
  EXPECT_FALSE(bad.valid());
}

TEST(AddressMap, CustomSplitVaultFieldStillBijective) {
  // The spec permits arbitrary user maps; split the vault bits into two
  // fields and verify decode/encode stay inverse.
  const Geometry g = geom_4link_8bank();
  AddressMap map(g, {{AddrField::Offset, 5},
                     {AddrField::Vault, 2},
                     {AddrField::Bank, 3},
                     {AddrField::Vault, 2},
                     {AddrField::Dram, 3},
                     {AddrField::Row, 16}});
  ASSERT_TRUE(map.valid()) << map.error();
  SplitMix64 rng(77);
  for (int i = 0; i < 3000; ++i) {
    const PhysAddr addr = rng.next_below(g.capacity_bytes());
    DecodedAddr d;
    ASSERT_EQ(map.decode(addr, d), Status::Ok);
    PhysAddr back = 0;
    ASSERT_EQ(map.encode(d, back), Status::Ok);
    ASSERT_EQ(back, addr);
  }
}

TEST(AddressMap, EncodeRejectsOutOfRangeCoordinates) {
  const AddressMap map = AddressMap::low_interleave(geom_4link_8bank(), 64);
  DecodedAddr d;
  d.vault = VaultId{16};  // only 16 vaults: 0..15
  PhysAddr out = 0;
  EXPECT_EQ(map.encode(d, out), Status::InvalidArgument);
}

}  // namespace
}  // namespace hmcsim
