// SECDED(72,64) codec: exhaustive single-bit correction and double-bit
// detection over the full 72-bit codeword space.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "mem/ecc.hpp"

namespace hmcsim {
namespace {

using ecc::SecdedOutcome;

// A handful of data words exercising all-zeros, all-ones, single bits and
// dense random patterns.
const u64 kSamples[] = {
    0x0000000000000000ull, 0xffffffffffffffffull, 0x0000000000000001ull,
    0x8000000000000000ull, 0xdeadbeefcafef00dull, 0x0123456789abcdefull,
    0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull,
};

// Flip one codeword bit: 0..63 data, 64..71 check.
void flip(u64& data, u8& check, u32 bit) {
  if (bit < ecc::kDataBits) {
    data ^= u64{1} << bit;
  } else {
    check ^= static_cast<u8>(1u << (bit - ecc::kDataBits));
  }
}

TEST(Secded, CleanWordDecodesClean) {
  for (const u64 sample : kSamples) {
    u64 data = sample;
    u8 check = ecc::secded_encode(data);
    EXPECT_EQ(ecc::secded_decode(data, check), SecdedOutcome::Clean);
    EXPECT_EQ(data, sample);
    EXPECT_EQ(check, ecc::secded_encode(sample));
  }
}

TEST(Secded, EverySingleBitFlipIsCorrected) {
  for (const u64 sample : kSamples) {
    const u8 good_check = ecc::secded_encode(sample);
    for (u32 bit = 0; bit < ecc::kCodewordBits; ++bit) {
      u64 data = sample;
      u8 check = good_check;
      flip(data, check, bit);
      EXPECT_EQ(ecc::secded_decode(data, check), SecdedOutcome::Corrected)
          << "bit " << bit;
      EXPECT_EQ(data, sample) << "bit " << bit;
      EXPECT_EQ(check, good_check) << "bit " << bit;
    }
  }
}

TEST(Secded, EveryDoubleBitFlipIsDetected) {
  for (const u64 sample : kSamples) {
    const u8 good_check = ecc::secded_encode(sample);
    for (u32 a = 0; a < ecc::kCodewordBits; ++a) {
      for (u32 b = a + 1; b < ecc::kCodewordBits; ++b) {
        u64 data = sample;
        u8 check = good_check;
        flip(data, check, a);
        flip(data, check, b);
        EXPECT_EQ(ecc::secded_decode(data, check),
                  SecdedOutcome::Uncorrectable)
            << "bits " << a << "," << b;
      }
    }
  }
}

TEST(Secded, EncodeIsDeterministicAndSensitive) {
  // Two words differing in one bit must get different check bytes for at
  // least the parity bit (any data flip changes overall parity).
  SplitMix64 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const u64 w = rng.next();
    const u8 c = ecc::secded_encode(w);
    EXPECT_EQ(c, ecc::secded_encode(w));
    const u64 flipped = w ^ (u64{1} << rng.next_below(64));
    EXPECT_NE(c, ecc::secded_encode(flipped));
  }
}

}  // namespace
}  // namespace hmcsim
