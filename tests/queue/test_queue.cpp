#include "queue/queue.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/random.hpp"

namespace hmcsim {
namespace {

TEST(BoundedQueue, StartsEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.free_slots(), 4u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop_front(), i);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.stats().rejected_full, 1u);
  // A rejected push must not disturb contents.
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front(), 1);
}

TEST(BoundedQueue, MiddleRemovalPreservesRelativeOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.remove(2), 2);  // remove a middle entry
  EXPECT_EQ(q.remove(3), 4);  // indices shifted after removal
  EXPECT_EQ(q.pop_front(), 0);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.pop_front(), 3);
  EXPECT_EQ(q.pop_front(), 5);
}

TEST(BoundedQueue, StatsTrackPushesPopsHighWater) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) (void)q.push(i);
  (void)q.pop_front();
  (void)q.push(3);
  (void)q.push(4);
  const QueueStats& s = q.stats();
  EXPECT_EQ(s.total_pushes, 5u);
  EXPECT_EQ(s.total_pops, 1u);
  EXPECT_EQ(s.high_water, 4u);
}

TEST(BoundedQueue, ResetStatsKeepsContents) {
  BoundedQueue<int> q(4);
  (void)q.push(9);
  q.reset_stats();
  EXPECT_EQ(q.stats().total_pushes, 0u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), 9);
}

TEST(BoundedQueue, ClearEmptiesWithoutCountingPops) {
  BoundedQueue<int> q(4);
  (void)q.push(1);
  (void)q.push(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().total_pops, 0u);
}

TEST(BoundedQueue, CapacityOneBehavesAsRegister) {
  // The paper requires at least one queue slot per logical queue, acting as
  // a registered input/output stage.
  BoundedQueue<std::string> q(1);
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push("b"));
  EXPECT_EQ(q.pop_front(), "a");
  EXPECT_TRUE(q.push("b"));
}

TEST(BoundedQueue, IterationIsOldestFirst) {
  BoundedQueue<int> q(8);
  for (int i = 10; i < 15; ++i) (void)q.push(i);
  int expected = 10;
  for (const int v : q) EXPECT_EQ(v, expected++);
}

TEST(BoundedQueue, MoveOnlyEntries) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(7)));
  auto p = q.pop_front();
  EXPECT_EQ(*p, 7);
}

TEST(BoundedQueue, RandomizedAgainstReferenceModel) {
  BoundedQueue<u64> q(16);
  std::vector<u64> model;
  SplitMix64 rng(4);
  for (int step = 0; step < 20000; ++step) {
    const u64 op = rng.next_below(3);
    if (op == 0) {
      const u64 v = rng.next();
      const bool pushed = q.push(v);
      EXPECT_EQ(pushed, model.size() < 16);
      if (pushed) model.push_back(v);
    } else if (op == 1 && !model.empty()) {
      EXPECT_EQ(q.pop_front(), model.front());
      model.erase(model.begin());
    } else if (op == 2 && !model.empty()) {
      const usize i = rng.next_below(model.size());
      EXPECT_EQ(q.remove(i), model[i]);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

}  // namespace
}  // namespace hmcsim
