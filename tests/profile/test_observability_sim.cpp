// Simulator-level observability tests: lifecycle of the profiler /
// telemetry / flight-recorder attachments, sampling cadence, fast-forward
// skip accounting, the watchdog post-mortem dump, and the JSON report
// sections.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "core/simulator.hpp"
#include "helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;
using test::small_device;

bool has_event(const std::vector<FlightEvent>& events, FlightEventType type) {
  return std::any_of(events.begin(), events.end(), [type](const FlightEvent& e) {
    return e.type == type;
  });
}

TEST(ObservabilitySim, AccessorsNullWhenOff) {
  Simulator sim = make_simple_sim();
  EXPECT_EQ(sim.profiler(), nullptr);
  EXPECT_EQ(sim.telemetry(), nullptr);
  EXPECT_EQ(sim.flight_recorder(), nullptr);
  std::ostringstream os;
  EXPECT_FALSE(sim.dump_flight_recorder(os));
  EXPECT_FALSE(sim.dump_flight_recorder_chrome(os));
  EXPECT_TRUE(os.str().empty());
}

TEST(ObservabilitySim, ProfilerCountsStagedCycles) {
  DeviceConfig dc = small_device();
  dc.self_profile = true;
  dc.fast_forward = false;
  Simulator sim = make_simple_sim(dc);
  ASSERT_NE(sim.profiler(), nullptr);
  EXPECT_EQ(sim.profiler()->num_devices(), 1u);
  EXPECT_EQ(sim.profiler()->vaults_per_device(), dc.num_vaults());

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x1000, 1), Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  EXPECT_EQ(sim.profiler()->staged_cycles(), sim.now());
  EXPECT_EQ(sim.profiler()->fast_cycles(), 0u);
}

TEST(ObservabilitySim, ProfilerAccountsFastForwardSkips) {
  DeviceConfig dc = small_device();
  dc.self_profile = true;
  ASSERT_TRUE(dc.fast_forward);
  Simulator sim = make_simple_sim(dc);
  ASSERT_NE(sim.profiler(), nullptr);

  for (u32 i = 0; i < 200; ++i) sim.clock();
  sim.flush_observability();
  const StageProfiler& prof = *sim.profiler();
  EXPECT_EQ(prof.staged_cycles() + prof.fast_cycles(), sim.now());
  EXPECT_GT(prof.fast_cycles(), 0u);
  EXPECT_GE(prof.skip_spans(), 1u);
}

TEST(ObservabilitySim, TelemetrySamplesAtConfiguredInterval) {
  DeviceConfig dc = small_device();
  dc.telemetry_interval_cycles = 4;
  dc.fast_forward = false;
  Simulator sim = make_simple_sim(dc);
  ASSERT_NE(sim.telemetry(), nullptr);

  for (u32 i = 0; i < 20; ++i) sim.clock();
  EXPECT_EQ(sim.telemetry()->sample_passes(), 5u);  // cycles 4,8,12,16,20
  // Idle queues: every sampled occupancy is zero.
  const OccupancyTrack& t = sim.telemetry()->track(TelemetryTrack::VaultRqst, 0);
  EXPECT_GT(t.samples, 0u);
  EXPECT_EQ(t.high_water, 0u);
}

TEST(ObservabilitySim, TelemetrySamplingSurvivesFastForward) {
  DeviceConfig dc = small_device();
  dc.telemetry_interval_cycles = 8;
  ASSERT_TRUE(dc.fast_forward);
  Simulator sim = make_simple_sim(dc);

  for (u32 i = 0; i < 64; ++i) sim.clock();
  // Fast-forward must stop at every sample cycle: 8,16,...,64 -> 8 passes.
  EXPECT_EQ(sim.telemetry()->sample_passes(), 8u);
}

TEST(ObservabilitySim, TelemetryObservesBusyQueues) {
  DeviceConfig dc = small_device();
  dc.telemetry_interval_cycles = 1;
  dc.bank_busy_cycles = 16;  // keep requests queued across samples
  Simulator sim = make_simple_sim(dc);

  for (u32 i = 0; i < 8; ++i) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, PhysAddr{0x1000} * (i + 1),
                           static_cast<Tag>(i + 1)),
              Status::Ok);
  }
  test::drain_all(sim);
  const Telemetry& tel = *sim.telemetry();
  const u64 vault_hw = tel.track(TelemetryTrack::VaultRqst, 0).high_water;
  const u64 xbar_hw = tel.track(TelemetryTrack::XbarRqst, 0).high_water;
  EXPECT_GT(vault_hw + xbar_hw, 0u);
}

TEST(ObservabilitySim, FlightRecorderCapturesSkipSpans) {
  DeviceConfig dc = small_device();
  dc.flight_recorder_depth = 16;
  ASSERT_TRUE(dc.fast_forward);
  Simulator sim = make_simple_sim(dc);
  ASSERT_NE(sim.flight_recorder(), nullptr);
  EXPECT_EQ(sim.flight_recorder()->depth(), 16u);

  for (u32 i = 0; i < 100; ++i) sim.clock();
  sim.flush_observability();
  const std::vector<FlightEvent> events = sim.flight_recorder()->snapshot(0);
  ASSERT_TRUE(has_event(events, FlightEventType::FfSkipSpan));
  for (const FlightEvent& ev : events) {
    if (ev.type != FlightEventType::FfSkipSpan) continue;
    EXPECT_GT(ev.arg, 0u);          // span length
    EXPECT_LE(ev.cycle, sim.now());  // stamped at span end
  }
}

TEST(ObservabilitySim, WatchdogFireRecordsArmAndFireAndDumpsTail) {
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 50;
  dc.flight_recorder_depth = 64;
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  dc.fast_forward = false;
  Simulator sim = make_simple_sim(dc);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x1000, 1), Status::Ok);
  // Wedge every bank in every vault so the request can never retire.
  for (VaultState& vault : sim.device(0).vaults) {
    for (Cycle& busy : vault.bank_busy_until) busy = ~Cycle{0};
  }
  for (u32 i = 0; i < 500 && !sim.watchdog_fired(); ++i) sim.clock();
  ASSERT_TRUE(sim.watchdog_fired());

  const std::vector<FlightEvent> events = sim.flight_recorder()->snapshot(0);
  EXPECT_TRUE(has_event(events, FlightEventType::WatchdogArm));
  EXPECT_TRUE(has_event(events, FlightEventType::WatchdogFire));

  const std::string& report = sim.watchdog_report();
  EXPECT_NE(report.find("flight recorder tail"), std::string::npos);
  EXPECT_NE(report.find("WATCHDOG_FIRE"), std::string::npos);
  // Satellite: link-protocol state rides along in the diagnostic.
  EXPECT_NE(report.find("proto:"), std::string::npos);
  EXPECT_NE(report.find("retry_buf_flits="), std::string::npos);
}

TEST(ObservabilitySim, WatchdogEmulationUnderFastForwardMatchesStaged) {
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 50;
  dc.flight_recorder_depth = 64;

  auto run = [&dc](bool fast_forward) {
    dc.fast_forward = fast_forward;
    Simulator sim = make_simple_sim(dc);
    EXPECT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x1000, 1), Status::Ok);
    for (VaultState& vault : sim.device(0).vaults) {
      for (Cycle& busy : vault.bank_busy_until) busy = ~Cycle{0};
    }
    for (u32 i = 0; i < 500 && !sim.watchdog_fired(); ++i) sim.clock();
    EXPECT_TRUE(sim.watchdog_fired());
    return sim.now();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ObservabilitySim, JsonReportHasObservabilitySections) {
  DeviceConfig dc = small_device();
  dc.self_profile = true;
  dc.telemetry_interval_cycles = 4;
  dc.flight_recorder_depth = 32;
  Simulator sim = make_simple_sim(dc);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x1000, 1), Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  sim.flush_observability();

  std::ostringstream os;
  write_stats_json(os, sim);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"stage1_child_xbar\""), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"vault_rqst\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"self_profile\":true"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry_interval_cycles\":4"), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder_depth\":32"), std::string::npos);
}

TEST(ObservabilitySim, JsonReportOmitsSectionsWhenOff) {
  Simulator sim = make_simple_sim();
  std::ostringstream os;
  write_stats_json(os, sim);
  const std::string json = os.str();
  EXPECT_EQ(json.find("\"profile\""), std::string::npos);
  EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
  EXPECT_EQ(json.find("\"flight_recorder\""), std::string::npos);
  // The config keys still report the off state.
  EXPECT_NE(json.find("\"self_profile\":false"), std::string::npos);
}

TEST(ObservabilitySim, ResetClearsObservability) {
  DeviceConfig dc = small_device();
  dc.self_profile = true;
  dc.telemetry_interval_cycles = 2;
  dc.flight_recorder_depth = 8;
  Simulator sim = make_simple_sim(dc);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x1000, 1), Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  ASSERT_GT(sim.profiler()->staged_cycles(), 0u);

  sim.reset();
  ASSERT_NE(sim.profiler(), nullptr);
  EXPECT_EQ(sim.profiler()->staged_cycles(), 0u);
  EXPECT_EQ(sim.telemetry()->sample_passes(), 0u);
  EXPECT_EQ(sim.flight_recorder()->recorded(0), 0u);
}

}  // namespace
}  // namespace hmcsim
