// Flight-recorder unit tests: the event wire format round-trips exactly,
// rings wrap keeping the newest events, and the text / Chrome renders are
// stable (the Chrome render is locked by a golden file).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "profile/flight_recorder.hpp"

#ifndef HMCSIM_GOLDEN_DIR
#define HMCSIM_GOLDEN_DIR "tests/golden"
#endif

namespace hmcsim {
namespace {

FlightEvent make_event(Cycle cycle, FlightEventType type, u64 arg = 0,
                       u32 dev = 0, u16 unit = 0, u8 stage = 0) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.arg = arg;
  ev.dev = dev;
  ev.unit = unit;
  ev.stage = stage;
  ev.type = type;
  return ev;
}

TEST(FlightEvent, EncodeDecodeRoundTripsEveryType) {
  for (u8 t = 0; t < kFlightEventTypeCount; ++t) {
    const FlightEvent ev =
        make_event(0x0123456789abcdefULL, static_cast<FlightEventType>(t),
                   0xfedcba9876543210ULL, 0xdeadbeefu, 0xbeefu, 7);
    u8 bytes[kFlightEventEncodedSize];
    flight_event_encode(ev, bytes);
    FlightEvent back;
    ASSERT_TRUE(flight_event_decode(bytes, back));
    EXPECT_EQ(back, ev);
  }
}

TEST(FlightEvent, EncodeIsLittleEndianStable) {
  // The dump-file format must not depend on host struct layout: lock the
  // exact byte image of one event.
  const FlightEvent ev = make_event(0x0102030405060708ULL,
                                    FlightEventType::LinkIrtry, 0x1122u,
                                    0xa0b0c0d0u, 0x0e0fu, 3);
  u8 bytes[kFlightEventEncodedSize];
  flight_event_encode(ev, bytes);
  const u8 expected[kFlightEventEncodedSize] = {
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // cycle, LE
      0x22, 0x11, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // arg, LE
      0xd0, 0xc0, 0xb0, 0xa0,                          // dev, LE
      0x0f, 0x0e,                                      // unit, LE
      0x03,                                            // stage
      0x01,                                            // type (LinkIrtry)
  };
  for (usize i = 0; i < kFlightEventEncodedSize; ++i) {
    EXPECT_EQ(bytes[i], expected[i]) << "byte " << i;
  }
}

TEST(FlightEvent, DecodeRejectsUnknownTypeByte) {
  u8 bytes[kFlightEventEncodedSize] = {};
  bytes[kFlightEventEncodedSize - 1] = kFlightEventTypeCount;  // first bad
  FlightEvent out = make_event(42, FlightEventType::RasSbe);
  const FlightEvent before = out;
  EXPECT_FALSE(flight_event_decode(bytes, out));
  EXPECT_EQ(out, before);  // untouched on failure
  bytes[kFlightEventEncodedSize - 1] = kFlightEventTypeCount - 1;
  EXPECT_TRUE(flight_event_decode(bytes, out));
}

TEST(FlightEvent, EveryTypeHasAName) {
  for (u8 t = 0; t < kFlightEventTypeCount; ++t) {
    const char* name = flight_event_name(static_cast<FlightEventType>(t));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(flight_event_name(FlightEventType::WatchdogFire),
               "WATCHDOG_FIRE");
  EXPECT_STREQ(flight_event_name(FlightEventType::FfSkipSpan),
               "FF_SKIP_SPAN");
}

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  FlightRecorder rec(1, 4);
  for (u64 i = 0; i < 10; ++i) {
    rec.record(0, make_event(100 + i, FlightEventType::Backpressure, i));
  }
  EXPECT_EQ(rec.recorded(0), 10u);
  EXPECT_EQ(rec.size(0), 4u);
  const std::vector<FlightEvent> kept = rec.snapshot(0);
  ASSERT_EQ(kept.size(), 4u);
  // Oldest retained first: events 6, 7, 8, 9.
  for (usize i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].cycle, 106 + i);
    EXPECT_EQ(kept[i].arg, 6 + i);
  }
}

TEST(FlightRecorder, PartialRingSnapshotsInRecordOrder) {
  FlightRecorder rec(2, 8);
  rec.record(1, make_event(5, FlightEventType::RasSbe, 1));
  rec.record(1, make_event(6, FlightEventType::RasDbe, 2));
  EXPECT_EQ(rec.size(0), 0u);
  EXPECT_EQ(rec.size(1), 2u);
  const std::vector<FlightEvent> kept = rec.snapshot(1);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].type, FlightEventType::RasSbe);
  EXPECT_EQ(kept[1].type, FlightEventType::RasDbe);
}

TEST(FlightRecorder, DepthClampsToAtLeastOne) {
  FlightRecorder rec(1, 0);
  EXPECT_EQ(rec.depth(), 1u);
  rec.record(0, make_event(1, FlightEventType::LinkRetry));
  rec.record(0, make_event(2, FlightEventType::LinkFailed));
  EXPECT_EQ(rec.size(0), 1u);
  EXPECT_EQ(rec.snapshot(0).front().cycle, 2u);
}

TEST(FlightRecorder, ClearDropsEverything) {
  FlightRecorder rec(2, 4);
  rec.record(0, make_event(1, FlightEventType::LinkRetry));
  rec.record(1, make_event(2, FlightEventType::LinkIrtry));
  rec.clear();
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_EQ(rec.recorded(1), 0u);
  EXPECT_EQ(rec.size(0), 0u);
  EXPECT_TRUE(rec.snapshot(1).empty());
}

TEST(FlightRecorder, TextDumpListsHeaderAndEvents) {
  FlightRecorder rec(1, 4);
  rec.record(0, make_event(17, FlightEventType::LinkRetry, 3, 0, 2, 1));
  rec.record(0, make_event(19, FlightEventType::WatchdogFire, 500));
  std::ostringstream os;
  rec.dump_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("flight recorder dev 0: 2 retained of 2 recorded"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cycle 17  LINK_RETRY  stage=1  unit=2  arg=3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cycle 19  WATCHDOG_FIRE  unit=0  arg=500"),
            std::string::npos)
      << text;
}

std::string render_chrome_fixture() {
  // A fixed two-device event mix covering instants on both rings and a
  // fast-forward span (rendered as a duration).
  FlightRecorder rec(2, 8);
  rec.record(0, make_event(10, FlightEventType::LinkRetry, 2, 0, 1, 2));
  rec.record(0, make_event(12, FlightEventType::WatchdogArm, 500, 0, 0, 6));
  rec.record(0, make_event(40, FlightEventType::FfSkipSpan, 25));
  rec.record(1, make_event(11, FlightEventType::RasDbe, 1, 1, 7, 4));
  rec.record(1, make_event(13, FlightEventType::VaultFailed, 8, 1, 7, 4));
  std::ostringstream os;
  rec.dump_chrome(os);
  return os.str();
}

TEST(FlightRecorder, ChromeDumpMatchesGoldenFile) {
  const std::string path =
      std::string(HMCSIM_GOLDEN_DIR) + "/flight_recorder_chrome.json";
  const std::string got = render_chrome_fixture();

  if (std::getenv("HMCSIM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden file regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with HMCSIM_UPDATE_GOLDEN=1 ctest -R ChromeDump";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Chrome render diverged; if intentional, regenerate with "
         "HMCSIM_UPDATE_GOLDEN=1 and review the diff.";
}

TEST(FlightRecorder, ChromeDumpIsWellFormedEnough) {
  const std::string got = render_chrome_fixture();
  EXPECT_EQ(got.front(), '{');
  EXPECT_NE(got.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(got.find("\"ph\":\"X\""), std::string::npos);  // the skip span
  EXPECT_NE(got.find("\"ph\":\"i\""), std::string::npos);  // instants
  // Balanced braces/brackets (cheap structural sanity without a parser).
  i64 braces = 0, brackets = 0;
  for (const char c : got) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace hmcsim
