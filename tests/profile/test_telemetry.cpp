// Occupancy-telemetry unit tests: the log2 histogram buckets, high-water /
// mean aggregation, and the per-device track families.
#include <gtest/gtest.h>

#include "profile/telemetry.hpp"

namespace hmcsim {
namespace {

TEST(OccupancyTrack, BucketBoundariesAreLog2) {
  OccupancyTrack t;
  t.sample(0);  // bucket 0: exactly zero
  t.sample(1);  // bucket 1: [1, 2)
  t.sample(2);  // bucket 2: [2, 4)
  t.sample(3);
  t.sample(4);  // bucket 3: [4, 8)
  t.sample(7);
  t.sample(8);  // bucket 4: [8, 16)
  EXPECT_EQ(t.buckets[0], 1u);
  EXPECT_EQ(t.buckets[1], 1u);
  EXPECT_EQ(t.buckets[2], 2u);
  EXPECT_EQ(t.buckets[3], 2u);
  EXPECT_EQ(t.buckets[4], 1u);
  EXPECT_EQ(t.samples, 7u);
}

TEST(OccupancyTrack, HugeValuesClampToLastBucket) {
  OccupancyTrack t;
  t.sample(u64{1} << 40);
  t.sample(~u64{0});
  EXPECT_EQ(t.buckets[kOccupancyBuckets - 1], 2u);
}

TEST(OccupancyTrack, HighWaterAndMean) {
  OccupancyTrack t;
  EXPECT_EQ(t.mean(), 0.0);  // no samples yet
  t.sample(2);
  t.sample(10);
  t.sample(3);
  EXPECT_EQ(t.high_water, 10u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
}

TEST(Telemetry, TracksArePerDeviceAndPerFamily) {
  Telemetry tel(2);
  tel.sample(TelemetryTrack::VaultRqst, 0, 4);
  tel.sample(TelemetryTrack::VaultRqst, 1, 9);
  tel.sample(TelemetryTrack::LinkTokens, 1, 2);
  EXPECT_EQ(tel.track(TelemetryTrack::VaultRqst, 0).high_water, 4u);
  EXPECT_EQ(tel.track(TelemetryTrack::VaultRqst, 1).high_water, 9u);
  EXPECT_EQ(tel.track(TelemetryTrack::LinkTokens, 1).high_water, 2u);
  EXPECT_EQ(tel.track(TelemetryTrack::LinkTokens, 0).samples, 0u);
  EXPECT_EQ(tel.num_devices(), 2u);
}

TEST(Telemetry, HostTagsAndSamplePasses) {
  Telemetry tel(1);
  tel.sample_host_tags(100);
  tel.sample_host_tags(50);
  tel.note_sample_pass();
  EXPECT_EQ(tel.host_tags().high_water, 100u);
  EXPECT_EQ(tel.host_tags().samples, 2u);
  EXPECT_EQ(tel.sample_passes(), 1u);
}

TEST(Telemetry, ResetZeroesAllTracks) {
  Telemetry tel(1);
  tel.sample(TelemetryTrack::XbarRsp, 0, 7);
  tel.sample_host_tags(3);
  tel.note_sample_pass();
  tel.reset();
  EXPECT_EQ(tel.track(TelemetryTrack::XbarRsp, 0).samples, 0u);
  EXPECT_EQ(tel.host_tags().samples, 0u);
  EXPECT_EQ(tel.sample_passes(), 0u);
}

TEST(Telemetry, TrackNamesAreDistinctAndStable) {
  EXPECT_STREQ(telemetry_track_name(TelemetryTrack::VaultRqst), "vault_rqst");
  EXPECT_STREQ(telemetry_track_name(TelemetryTrack::LinkTokens),
               "link_token_deficit");
  for (usize a = 0; a < kTelemetryTrackCount; ++a) {
    for (usize b = a + 1; b < kTelemetryTrackCount; ++b) {
      EXPECT_STRNE(telemetry_track_name(static_cast<TelemetryTrack>(a)),
                   telemetry_track_name(static_cast<TelemetryTrack>(b)));
    }
  }
}

}  // namespace
}  // namespace hmcsim
