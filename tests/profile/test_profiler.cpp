// StageProfiler unit tests: accumulation slots, cycle counters, reset, and
// the monotonic time source.
#include <gtest/gtest.h>

#include <string>

#include "profile/profiler.hpp"

namespace hmcsim {
namespace {

TEST(StageProfiler, AccumulatesPerStage) {
  StageProfiler prof(2, 4);
  prof.add_stage(ProfileStage::Stage1Xbar, 10);
  prof.add_stage(ProfileStage::Stage1Xbar, 5);
  prof.add_stage(ProfileStage::Stage5Responses, 7);
  EXPECT_EQ(prof.stage_ns(ProfileStage::Stage1Xbar), 15u);
  EXPECT_EQ(prof.stage_ns(ProfileStage::Stage5Responses), 7u);
  EXPECT_EQ(prof.stage_ns(ProfileStage::Stage6Clock), 0u);
  EXPECT_EQ(prof.total_ns(), 22u);
}

TEST(StageProfiler, DeviceAndVaultSlotsAreIndependent) {
  StageProfiler prof(2, 4);
  prof.add_device(ProfileStage::Stage1Xbar, 0, 3);
  prof.add_device(ProfileStage::Stage2RootXbar, 1, 4);
  prof.add_vault(0, 3, 11);
  prof.add_vault(1, 0, 13);
  prof.add_vault(1, 0, 2);
  EXPECT_EQ(prof.device_ns(ProfileStage::Stage1Xbar, 0), 3u);
  EXPECT_EQ(prof.device_ns(ProfileStage::Stage1Xbar, 1), 0u);
  EXPECT_EQ(prof.device_ns(ProfileStage::Stage2RootXbar, 1), 4u);
  EXPECT_EQ(prof.vault_ns(0, 3), 11u);
  EXPECT_EQ(prof.vault_ns(1, 0), 15u);
  EXPECT_EQ(prof.vault_ns(0, 0), 0u);
  // Shard-side attribution is not double-counted into the stage totals.
  EXPECT_EQ(prof.total_ns(), 0u);
}

TEST(StageProfiler, CycleCountersTrackSeparately) {
  StageProfiler prof(1, 1);
  prof.note_staged_cycle();
  prof.note_staged_cycle();
  prof.note_fast_cycle();
  prof.note_skip_span();
  EXPECT_EQ(prof.staged_cycles(), 2u);
  EXPECT_EQ(prof.fast_cycles(), 1u);
  EXPECT_EQ(prof.skip_spans(), 1u);
}

TEST(StageProfiler, ResetZeroesEverything) {
  StageProfiler prof(1, 2);
  prof.add_stage(ProfileStage::Stage34Vaults, 9);
  prof.add_device(ProfileStage::Stage1Xbar, 0, 1);
  prof.add_vault(0, 1, 5);
  prof.note_staged_cycle();
  prof.note_fast_cycle();
  prof.note_skip_span();
  prof.reset();
  EXPECT_EQ(prof.total_ns(), 0u);
  EXPECT_EQ(prof.device_ns(ProfileStage::Stage1Xbar, 0), 0u);
  EXPECT_EQ(prof.vault_ns(0, 1), 0u);
  EXPECT_EQ(prof.staged_cycles(), 0u);
  EXPECT_EQ(prof.fast_cycles(), 0u);
  EXPECT_EQ(prof.skip_spans(), 0u);
}

TEST(StageProfiler, StageNamesAreDistinctAndStable) {
  EXPECT_STREQ(profile_stage_name(ProfileStage::Stage1Xbar),
               "stage1_child_xbar");
  EXPECT_STREQ(profile_stage_name(ProfileStage::Stage34Vaults),
               "stage3_4_vaults");
  EXPECT_STREQ(profile_stage_name(ProfileStage::FastForward), "fast_forward");
  for (usize a = 0; a < kProfileStageCount; ++a) {
    for (usize b = a + 1; b < kProfileStageCount; ++b) {
      EXPECT_STRNE(profile_stage_name(static_cast<ProfileStage>(a)),
                   profile_stage_name(static_cast<ProfileStage>(b)));
    }
  }
}

TEST(StageProfiler, NowNsIsMonotonic) {
  const u64 a = StageProfiler::now_ns();
  const u64 b = StageProfiler::now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace hmcsim
