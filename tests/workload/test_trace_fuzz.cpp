// Trace-file loader fuzzing: whole hostile files — random bytes, embedded
// NULs, enormous lines, truncated valid traces — must never crash the
// loader, and every diagnosed error must carry usable context (1-based
// line number plus the parser's reason).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/random.hpp"
#include "workload/trace_file.hpp"

namespace hmcsim {
namespace {

TEST(TraceFileFuzz, RandomByteStreamsNeverCrashTheLoader) {
  SplitMix64 rng(0xF11E);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string file;
    const usize len = rng.next_below(2048);
    for (usize i = 0; i < len; ++i) {
      file += static_cast<char>(rng.next_below(256));
    }
    std::istringstream in(file);
    TraceFileGenerator gen(in);
    // Whatever got accepted must replay without faulting.
    for (usize i = 0; i < gen.size() && i < 16; ++i) (void)gen.next();
    if (gen.malformed_lines() != 0) {
      EXPECT_GT(gen.first_error_line(), 0u);
      EXPECT_FALSE(gen.first_error().empty());
    }
  }
}

TEST(TraceFileFuzz, MutatedValidTracesFailCleanlyWithContext) {
  // Start from a valid trace and flip one character at a time.  The loader
  // either still accepts the trace or names the damaged line.
  const std::string base =
      "# fuzz base\n"
      "R 0x1a2b40 64\n"
      "W 0x000100 128\n"
      "A 0x000200\n";
  SplitMix64 rng(0xF12E);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string mutated = base;
    const usize pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    std::istringstream in(mutated);
    TraceFileGenerator gen(in);
    if (gen.malformed_lines() != 0) {
      EXPECT_GE(gen.first_error_line(), 1u);
      EXPECT_LE(gen.first_error_line(), 5u);
      EXPECT_FALSE(gen.first_error().empty());
    }
  }
}

TEST(TraceFileFuzz, GiantSingleLineIsRejectedNotCrashed) {
  std::string file = "R 0x100 ";
  file.append(1u << 20, '6');  // a megabyte of digits: size overflows
  file += "\nR 0x40 64\n";
  std::istringstream in(file);
  TraceFileGenerator gen(in);
  EXPECT_EQ(gen.size(), 1u);  // the sane line survives
  EXPECT_EQ(gen.malformed_lines(), 1u);
  EXPECT_EQ(gen.first_error_line(), 1u);
}

TEST(TraceFileFuzz, EmbeddedNulsAndMissingFinalNewline) {
  std::string file = "R 0x100 64\n";
  file += '\0';
  file += " junk\nW 0x40 32";  // NUL line + no trailing newline
  std::istringstream in(file);
  TraceFileGenerator gen(in);
  EXPECT_EQ(gen.size(), 2u);
  EXPECT_EQ(gen.malformed_lines(), 1u);
  EXPECT_EQ(gen.first_error_line(), 2u);
}

TEST(TraceFileFuzz, FirstErrorReportsTheEarliestDamage) {
  std::istringstream in("R 0x100 64\nR 0x100 13\nX what\n");
  TraceFileGenerator gen(in);
  EXPECT_EQ(gen.malformed_lines(), 2u);
  EXPECT_EQ(gen.first_error_line(), 2u);
  EXPECT_NE(gen.first_error().find("bad size"), std::string::npos)
      << gen.first_error();
}

TEST(TraceFileFuzz, ParserWhyNamesEveryFailureClass) {
  RequestDesc d;
  std::string why;
  EXPECT_FALSE(parse_trace_request("X 0x100 64", d, nullptr, &why));
  EXPECT_NE(why.find("unknown op"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R", d, nullptr, &why));
  EXPECT_NE(why.find("missing address"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R nothex 64", d, nullptr, &why));
  EXPECT_NE(why.find("bad address"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R 0x400000000 64", d, nullptr, &why));
  EXPECT_NE(why.find("34-bit"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R 0x100", d, nullptr, &why));
  EXPECT_NE(why.find("size"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R 0x100 13", d, nullptr, &why));
  EXPECT_NE(why.find("bad size"), std::string::npos);
  EXPECT_FALSE(parse_trace_request("R 0x100 64 junk", d, nullptr, &why));
  EXPECT_NE(why.find("trailing garbage"), std::string::npos);
}

}  // namespace
}  // namespace hmcsim
