// Host-side resilience: per-tag response timeouts, retry with exponential
// backoff, zombie-tag conservation, and the abandon path once the retry
// budget is exhausted.
#include <gtest/gtest.h>

#include <sstream>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

DriverConfig resilient_cfg(u64 requests) {
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.max_cycles = 500000;
  return dcfg;
}

GeneratorConfig gen_cfg(const DeviceConfig& dc) {
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  return gc;
}

TEST(HostResilience, GenerousTimeoutNeverTrips) {
  DeviceConfig dc = small_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  RandomAccessGenerator gen(gen_cfg(dc));
  DriverConfig dcfg = resilient_cfg(2000);
  dcfg.response_timeout_cycles = 100000;  // far beyond any real latency
  dcfg.retry_limit = 4;
  dcfg.retry_backoff_cycles = 16;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.abandoned, 0u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(HostResilience, TightTimeoutRetriesAndConserves) {
  // A timeout below typical latency forces real timeouts; retries go out
  // under fresh tags while zombie tags wait for the late responses.  Every
  // logical request still terminates exactly once.
  DeviceConfig dc = small_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  RandomAccessGenerator gen(gen_cfg(dc));
  DriverConfig dcfg = resilient_cfg(1000);
  dcfg.response_timeout_cycles = 4;  // p50 round-trip is ~5 cycles
  dcfg.retry_limit = 8;
  dcfg.retry_backoff_cycles = 2;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 1000u);
  EXPECT_GT(r.timeouts, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_FALSE(r.hit_cycle_cap);
  // Terminations partition the request population.
  EXPECT_LE(r.abandoned, r.timeouts);
}

TEST(HostResilience, ExhaustedBudgetAbandonsDeterministically) {
  // With a 1-cycle timeout nothing ever answers in time: every request
  // burns its full retry budget and terminates as a host-side timeout.
  DeviceConfig dc = small_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  RandomAccessGenerator gen(gen_cfg(dc));
  DriverConfig dcfg = resilient_cfg(64);
  dcfg.response_timeout_cycles = 1;
  dcfg.retry_limit = 2;
  dcfg.retry_backoff_cycles = 1;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 64u);
  EXPECT_EQ(r.abandoned, 64u);
  EXPECT_EQ(r.retries, 2u * 64u);       // every request resent twice
  EXPECT_EQ(r.timeouts, 3u * 64u);      // initial send + both resends
  EXPECT_EQ(r.latency.count, 0u);       // no response beat its deadline
  EXPECT_FALSE(r.hit_cycle_cap);
}

TEST(HostResilience, BackoffDelaysResends) {
  // Same forced-timeout scenario at two backoff settings: the larger
  // backoff must stretch the run.
  const auto run_cycles = [](Cycle backoff) {
    DeviceConfig dc = small_device();
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    RandomAccessGenerator gen(gen_cfg(dc));
    DriverConfig dcfg = resilient_cfg(32);
    dcfg.response_timeout_cycles = 1;
    dcfg.retry_limit = 6;
    dcfg.retry_backoff_cycles = backoff;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 32u);
    EXPECT_EQ(r.abandoned, 32u);
    return r.cycles;
  };
  // Exponential: 128 << 5 = 4096 cycles on the last wait alone.
  EXPECT_GT(run_cycles(128), run_cycles(1) + 1000);
}

TEST(HostResilience, StepApiMatchesRun) {
  const auto make = [](Simulator& sim, RandomAccessGenerator& gen) {
    DriverConfig dcfg = resilient_cfg(500);
    dcfg.response_timeout_cycles = 4;
    dcfg.retry_limit = 4;
    dcfg.retry_backoff_cycles = 8;
    return HostDriver(sim, gen, dcfg);
  };
  DeviceConfig dc = small_device();
  dc.model_data = false;

  Simulator sim_a = test::make_simple_sim(dc);
  RandomAccessGenerator gen_a(gen_cfg(dc));
  HostDriver driver_a = make(sim_a, gen_a);
  const DriverResult ra = driver_a.run();

  Simulator sim_b = test::make_simple_sim(dc);
  RandomAccessGenerator gen_b(gen_cfg(dc));
  HostDriver driver_b = make(sim_b, gen_b);
  DriverResult rb;
  while (driver_b.step(rb)) {
  }
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.sent, rb.sent);
  EXPECT_EQ(ra.timeouts, rb.timeouts);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.abandoned, rb.abandoned);
  EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST(HostResilience, SaveRestoreRoundTripsDriverState) {
  // Mid-run save with live zombies and a populated retry queue; the
  // restored driver must finish with identical counters.
  DeviceConfig dc = small_device();
  dc.model_data = false;
  const auto cfg = [] {
    DriverConfig dcfg = resilient_cfg(600);
    dcfg.response_timeout_cycles = 4;  // below p50: real timeout traffic
    dcfg.retry_limit = 6;
    dcfg.retry_backoff_cycles = 8;
    return dcfg;
  }();

  // Reference: uninterrupted run.
  Simulator sim_ref = test::make_simple_sim(dc);
  RandomAccessGenerator gen_ref(gen_cfg(dc));
  HostDriver driver_ref(sim_ref, gen_ref, cfg);
  const DriverResult r_ref = driver_ref.run();

  // Interrupted run: step partway, checkpoint both layers, resume in
  // fresh objects.
  Simulator sim_a = test::make_simple_sim(dc);
  RandomAccessGenerator gen_a(gen_cfg(dc));
  HostDriver driver_a(sim_a, gen_a, cfg);
  DriverResult r_mid;
  // Injection alone takes tens of cycles, so 30 steps is safely mid-run
  // with live zombies and a populated retry queue.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(driver_a.step(r_mid));
  }
  std::stringstream sim_stream, driver_stream;
  ASSERT_EQ(sim_a.save_checkpoint(sim_stream), Status::Ok);
  ASSERT_EQ(driver_a.save(driver_stream), Status::Ok);

  Simulator sim_b;
  ASSERT_EQ(sim_b.restore_checkpoint(sim_stream), Status::Ok);
  RandomAccessGenerator gen_b(gen_cfg(dc));  // same seed, replayed inside
  HostDriver driver_b(sim_b, gen_b, cfg);
  ASSERT_EQ(driver_b.restore(driver_stream), Status::Ok);

  DriverResult r_b = r_mid;  // counters accumulated so far carry over
  while (driver_b.step(r_b)) {
  }
  EXPECT_EQ(r_b.completed, r_ref.completed);
  EXPECT_EQ(r_b.sent, r_ref.sent);
  EXPECT_EQ(r_b.timeouts, r_ref.timeouts);
  EXPECT_EQ(r_b.retries, r_ref.retries);
  EXPECT_EQ(r_b.abandoned, r_ref.abandoned);
  EXPECT_EQ(r_b.errors, r_ref.errors);
  EXPECT_EQ(r_b.cycles, r_ref.cycles);
}

}  // namespace
}  // namespace hmcsim
