#include "workload/driver.hpp"

#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::small_device;

GeneratorConfig gen_config(const DeviceConfig& dc) {
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = 64;
  return gc;
}

TEST(LatencyStats, Accumulation) {
  LatencyStats stats;
  stats.add(4);
  stats.add(8);
  stats.add(12);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min, 4u);
  EXPECT_EQ(stats.max, 12u);
  EXPECT_DOUBLE_EQ(stats.mean(), 8.0);
  // log2 buckets: 4,8 -> buckets 2 and 3; 12 -> bucket 3.
  EXPECT_EQ(stats.log2_buckets[2], 1u);
  EXPECT_EQ(stats.log2_buckets[3], 2u);
}

TEST(LatencyStats, PercentileBounds) {
  LatencyStats stats;
  EXPECT_EQ(stats.percentile(0.5), 0u);  // empty
  for (Cycle v : {4u, 8u, 16u, 32u, 64u}) stats.add(v);
  EXPECT_EQ(stats.percentile(0.0), 4u);
  EXPECT_EQ(stats.percentile(1.0), 64u);
  // Every percentile lies within [min, max] and is monotone in p.
  Cycle prev = 0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const Cycle v = stats.percentile(p);
    EXPECT_GE(v, stats.min);
    EXPECT_LE(v, stats.max);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyStats, PercentileApproximatesUniformData) {
  LatencyStats stats;
  for (Cycle v = 100; v < 200; ++v) stats.add(v);  // all in bucket [128,256)
  // Median of 100..199 is ~150; the log2 estimate must land within the
  // observed range and the right half-bucket.
  const Cycle p50 = stats.percentile(0.5);
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 199u);
}

TEST(LatencyStats, ZeroLatencyGoesToBucketZero) {
  LatencyStats stats;
  stats.add(0);
  stats.add(1);
  EXPECT_EQ(stats.log2_buckets[0], 2u);
}

TEST(HostDriver, CompletesEveryRequest) {
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 500;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.sent, 500u);
  EXPECT_EQ(r.completed, 500u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_FALSE(r.hit_cycle_cap);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.latency.count, 500u);
  EXPECT_GE(r.latency.min, 4u);  // pipeline depth floor
  EXPECT_TRUE(sim.quiescent());
}

TEST(HostDriver, StatsMatchSimulatorCounters) {
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 300;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(s.reads + s.writes, 300u);
  EXPECT_EQ(s.sends, 300u);
  EXPECT_EQ(s.recvs, r.completed);
  // ~50/50 mix within generous bounds.
  EXPECT_GT(s.reads, 100u);
  EXPECT_GT(s.writes, 100u);
}

TEST(HostDriver, RoundRobinSpreadsAcrossLinks) {
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 400;
  HostDriver driver(sim, gen, dcfg);
  (void)driver.run();
  // Every link queue saw traffic.
  for (u32 l = 0; l < 4; ++l) {
    EXPECT_GT(sim.device(0).links[l].rqst.stats().total_pushes, 50u)
        << "link " << l;
  }
}

TEST(HostDriver, LocalityAwarePolicyCutsLatencyPenalties) {
  const auto run = [&](InjectionPolicy policy) {
    Simulator sim = test::make_simple_sim();
    RandomAccessGenerator gen(gen_config(sim.config().device));
    DriverConfig dcfg;
    dcfg.total_requests = 2000;
    dcfg.policy = policy;
    HostDriver driver(sim, gen, dcfg);
    (void)driver.run();
    return sim.total_stats().latency_penalties;
  };
  const u64 rr = run(InjectionPolicy::RoundRobin);
  const u64 local = run(InjectionPolicy::LocalityAware);
  // Round-robin injection lands ~3/4 of requests on a non-co-located link.
  // Locality-aware injection prefers the co-located port and only falls
  // back under backpressure, so penalties must drop by well over half.
  EXPECT_GT(rr, 1000u);
  EXPECT_LT(local * 2, rr);
}

TEST(HostDriver, PostedTrafficCompletesWithoutResponses) {
  Simulator sim = test::make_simple_sim();
  GeneratorConfig gc = gen_config(sim.config().device);
  gc.read_fraction = 0.0;
  // Posted writes via a custom generator wrapper.
  class PostedGen final : public Generator {
   public:
    explicit PostedGen(const GeneratorConfig& cfg) : inner_(cfg) {}
    RequestDesc next() override {
      RequestDesc d = inner_.next();
      d.cmd = Command::PostedWr64;
      return d;
    }
    const char* name() const override { return "posted"; }

   private:
    RandomAccessGenerator inner_;
  } gen(gc);

  DriverConfig dcfg;
  dcfg.total_requests = 200;
  dcfg.max_cycles = 10000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 200u);
  EXPECT_EQ(r.latency.count, 0u);  // no responses to time
  EXPECT_FALSE(r.hit_cycle_cap);
}

TEST(HostDriver, CycleCapStopsHopelessRuns) {
  // Unroutable targets produce error responses, which still complete the
  // requests; a cube id beyond the CUB range cannot even be built, so use a
  // generator whose addresses are fine but target an absent cube — those
  // DO complete (with errors).  The cap is exercised via an absurdly low
  // budget instead.
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 100000;
  dcfg.max_cycles = 50;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_TRUE(r.hit_cycle_cap);
  EXPECT_LT(r.completed, 100000u);
  EXPECT_EQ(r.cycles, 50u);
}

TEST(HostDriver, ErrorResponsesAreCountedAndComplete) {
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 50;
  dcfg.target_cub = 5;  // nonexistent cube: every request errors
  dcfg.max_cycles = 5000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 50u);
  EXPECT_EQ(r.errors, 50u);
  EXPECT_FALSE(r.hit_cycle_cap);
}

TEST(HostDriver, OutstandingLimitIsRespected) {
  Simulator sim = test::make_simple_sim();
  RandomAccessGenerator gen(gen_config(sim.config().device));
  DriverConfig dcfg;
  dcfg.total_requests = 300;
  dcfg.max_outstanding_per_port = 2;  // tiny tag budget
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 300u);
  // With <= 8 outstanding total, the run must take many more cycles than a
  // full-window run.
  EXPECT_GT(r.cycles, 300u / 8);
}

TEST(HostDriver, MultiCubeTargetsSpreadWork) {
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(2, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  RandomAccessGenerator gen(gen_config(sc.device));
  DriverConfig dcfg;
  dcfg.total_requests = 400;
  dcfg.targets = TargetPolicy::RoundRobinCubes;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 400u);
  EXPECT_GT(sim.stats(0).retired(), 150u);
  EXPECT_GT(sim.stats(1).retired(), 150u);
}

}  // namespace
}  // namespace hmcsim
