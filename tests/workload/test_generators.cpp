#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace hmcsim {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig gc;
  gc.capacity_bytes = u64{1} << 26;  // 64 MiB keeps distributions testable
  gc.request_bytes = 64;
  gc.read_fraction = 0.5;
  gc.seed = 1;
  return gc;
}

TEST(CommandsForSize, DeriveReadWritePairs) {
  EXPECT_EQ(read_command_for(16), Command::Rd16);
  EXPECT_EQ(read_command_for(64), Command::Rd64);
  EXPECT_EQ(read_command_for(128), Command::Rd128);
  EXPECT_EQ(write_command_for(16), Command::Wr16);
  EXPECT_EQ(write_command_for(64), Command::Wr64);
  EXPECT_EQ(write_command_for(128), Command::Wr128);
}

TEST(RandomAccessGenerator, AddressesAreAlignedAndInRange) {
  const GeneratorConfig gc = small_config();
  RandomAccessGenerator gen(gc);
  for (int i = 0; i < 20000; ++i) {
    const RequestDesc d = gen.next();
    EXPECT_LT(d.addr + gc.request_bytes, gc.capacity_bytes + 1);
    EXPECT_EQ(d.addr % gc.request_bytes, 0u);
  }
}

TEST(RandomAccessGenerator, FiftyFiftyMix) {
  RandomAccessGenerator gen(small_config());
  int reads = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (is_read(gen.next().cmd)) ++reads;
  }
  EXPECT_NEAR(reads, kDraws / 2, kDraws / 50);  // within ~2%
}

TEST(RandomAccessGenerator, ReadFractionExtremes) {
  GeneratorConfig gc = small_config();
  gc.read_fraction = 1.0;
  RandomAccessGenerator all_reads(gc);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(is_read(all_reads.next().cmd));
  gc.read_fraction = 0.0;
  RandomAccessGenerator all_writes(gc);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(is_write(all_writes.next().cmd));
}

TEST(RandomAccessGenerator, DeterministicPerSeed) {
  RandomAccessGenerator a(small_config()), b(small_config());
  for (int i = 0; i < 1000; ++i) {
    const RequestDesc da = a.next(), db = b.next();
    ASSERT_EQ(da.addr, db.addr);
    ASSERT_EQ(da.cmd, db.cmd);
  }
  GeneratorConfig other = small_config();
  other.seed = 2;
  RandomAccessGenerator c(other);
  int same = 0;
  RandomAccessGenerator a2(small_config());
  for (int i = 0; i < 100; ++i) {
    if (a2.next().addr == c.next().addr) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomAccessGenerator, CoversTheWholeAddressSpace) {
  GeneratorConfig gc = small_config();
  gc.capacity_bytes = 64 * 16;  // 16 blocks only
  RandomAccessGenerator gen(gc);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.next().addr);
  EXPECT_EQ(seen.size(), 16u);
}

TEST(RandomAccessGenerator, RequestSizeControlsCommands) {
  GeneratorConfig gc = small_config();
  gc.request_bytes = 128;
  RandomAccessGenerator gen(gc);
  for (int i = 0; i < 100; ++i) {
    const Command c = gen.next().cmd;
    EXPECT_TRUE(c == Command::Rd128 || c == Command::Wr128);
  }
}

TEST(StreamGenerator, SequentialWrapping) {
  GeneratorConfig gc = small_config();
  gc.capacity_bytes = 64 * 8;
  StreamGenerator gen(gc);
  for (int lap = 0; lap < 3; ++lap) {
    for (u64 i = 0; i < 8; ++i) {
      EXPECT_EQ(gen.next().addr, i * 64);
    }
  }
}

TEST(StreamGenerator, StartOffset) {
  StreamGenerator gen(small_config(), /*start=*/640);
  EXPECT_EQ(gen.next().addr, 640u);
  EXPECT_EQ(gen.next().addr, 704u);
}

TEST(StrideGenerator, FixedStride) {
  StrideGenerator gen(small_config(), /*stride_bytes=*/4096);
  EXPECT_EQ(gen.next().addr, 0u);
  EXPECT_EQ(gen.next().addr, 4096u);
  EXPECT_EQ(gen.next().addr, 8192u);
}

TEST(StrideGenerator, StaysInCapacity) {
  GeneratorConfig gc = small_config();
  gc.capacity_bytes = 1 << 16;
  StrideGenerator gen(gc, 4096 + 64);
  for (int i = 0; i < 1000; ++i) {
    const RequestDesc d = gen.next();
    EXPECT_LE(d.addr + gc.request_bytes, gc.capacity_bytes);
  }
}

TEST(HotspotGenerator, SkewsTowardHotRegion) {
  GeneratorConfig gc = small_config();
  HotspotGenerator gen(gc, /*hot_fraction=*/0.9, /*hot_bytes=*/64 * 64);
  int hot = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next().addr < 64 * 64) ++hot;
  }
  // ~90% hot plus the sliver of uniform traffic that also lands there.
  EXPECT_GT(hot, kDraws * 85 / 100);
}

TEST(HotspotGenerator, ZeroFractionIsUniform) {
  GeneratorConfig gc = small_config();
  HotspotGenerator gen(gc, 0.0, 64 * 64);
  int hot = 0;
  for (int i = 0; i < 20000; ++i) {
    if (gen.next().addr < 64 * 64) ++hot;
  }
  // Hot region is 64*64 bytes of 64 MiB: essentially nothing lands there.
  EXPECT_LT(hot, 50);
}

TEST(PointerChaseGenerator, DeterministicChainOfReads) {
  GeneratorConfig gc = small_config();
  PointerChaseGenerator a(gc), b(gc);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 1000; ++i) {
    const RequestDesc da = a.next();
    ASSERT_EQ(da.addr, b.next().addr);
    EXPECT_TRUE(is_read(da.cmd));
    EXPECT_LE(da.addr + gc.request_bytes, gc.capacity_bytes);
    seen.insert(da.addr);
  }
  // The chain must not collapse into a short cycle.
  EXPECT_GT(seen.size(), 900u);
}

TEST(Generators, NamesAreStable) {
  GeneratorConfig gc = small_config();
  EXPECT_STREQ(RandomAccessGenerator(gc).name(), "random_access");
  EXPECT_STREQ(StreamGenerator(gc).name(), "stream");
  EXPECT_STREQ(StrideGenerator(gc, 64).name(), "stride");
  EXPECT_STREQ(HotspotGenerator(gc, 0.5, 1024).name(), "hotspot");
  EXPECT_STREQ(PointerChaseGenerator(gc).name(), "pointer_chase");
}

}  // namespace
}  // namespace hmcsim
