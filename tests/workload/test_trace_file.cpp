#include "workload/trace_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

TEST(TraceParse, ValidLines) {
  RequestDesc d;
  ASSERT_TRUE(parse_trace_request("R 0x1a2b40 64", d));
  EXPECT_EQ(d.cmd, Command::Rd64);
  EXPECT_EQ(d.addr, 0x1a2b40u);

  ASSERT_TRUE(parse_trace_request("W 256 128", d));  // decimal address
  EXPECT_EQ(d.cmd, Command::Wr128);
  EXPECT_EQ(d.addr, 256u);

  ASSERT_TRUE(parse_trace_request("A 0x200", d));
  EXPECT_EQ(d.cmd, Command::TwoAdd8);
  EXPECT_EQ(d.addr, 0x200u);
}

TEST(TraceParse, CommentsAndBlanks) {
  RequestDesc d;
  bool comment = false;
  EXPECT_FALSE(parse_trace_request("# header line", d, &comment));
  EXPECT_TRUE(comment);
  EXPECT_FALSE(parse_trace_request("", d, &comment));
  EXPECT_TRUE(comment);
  EXPECT_FALSE(parse_trace_request("   ", d, &comment));
  EXPECT_TRUE(comment);
}

TEST(TraceParse, MalformedLines) {
  RequestDesc d;
  bool comment = true;
  EXPECT_FALSE(parse_trace_request("X 0x100 64", d, &comment));
  EXPECT_FALSE(comment);
  EXPECT_FALSE(parse_trace_request("R 0x100", d));          // missing size
  EXPECT_FALSE(parse_trace_request("R 0x100 48 junk", d));  // trailing
  EXPECT_FALSE(parse_trace_request("R nothex 64", d));
  EXPECT_FALSE(parse_trace_request("R 0x100 13", d));   // not multiple of 16
  EXPECT_FALSE(parse_trace_request("R 0x100 256", d));  // beyond 128
  EXPECT_FALSE(parse_trace_request("R 0x400000000 64", d));  // > 2^34
}

TEST(TraceRoundTrip, WriteThenParse) {
  std::vector<RequestDesc> requests = {
      {Command::Rd16, 0x40}, {Command::Wr64, 0x1000},
      {Command::TwoAdd8, 0x2000}, {Command::Rd128, 0x3000},
      {Command::Wr16, 0x0}};
  std::ostringstream os;
  write_request_trace(os, requests);
  std::istringstream is(os.str());
  TraceFileGenerator gen(is);
  ASSERT_TRUE(gen.valid());
  ASSERT_EQ(gen.size(), requests.size());
  EXPECT_EQ(gen.malformed_lines(), 0u);
  for (const RequestDesc& expected : requests) {
    const RequestDesc got = gen.next();
    EXPECT_EQ(got.cmd, expected.cmd);
    EXPECT_EQ(got.addr, expected.addr);
  }
}

TEST(TraceFileGenerator, WrapsAround) {
  TraceFileGenerator gen(std::vector<RequestDesc>{{Command::Rd16, 0x10},
                                                  {Command::Rd16, 0x20}});
  EXPECT_EQ(gen.next().addr, 0x10u);
  EXPECT_EQ(gen.next().addr, 0x20u);
  EXPECT_EQ(gen.next().addr, 0x10u);  // wrapped
}

TEST(TraceFileGenerator, CountsMalformedAndSkips) {
  std::istringstream is("R 0x40 64\nbogus line\n# comment\nW 0x80 32\n");
  TraceFileGenerator gen(is);
  EXPECT_TRUE(gen.valid());
  EXPECT_EQ(gen.size(), 2u);
  EXPECT_EQ(gen.malformed_lines(), 1u);
}

TEST(TraceFileGenerator, OverlongLinesCountAsMalformed) {
  // One hostile 70000-byte line among valid requests: the loader must skip
  // it as malformed (with a diagnostic naming the bound), keep the valid
  // lines, and never buffer the oversized line whole.
  std::string text = "R 0x40 64\nW ";
  text.append(70000, '8');
  text += " 64\nW 0x80 32\n";
  std::istringstream is(text);
  TraceFileGenerator gen(is);
  EXPECT_TRUE(gen.valid());
  EXPECT_EQ(gen.size(), 2u);
  EXPECT_EQ(gen.malformed_lines(), 1u);
  EXPECT_NE(gen.first_error().find("65536"), std::string::npos);
}

TEST(TraceFileGenerator, EmptyTraceIsInvalid) {
  std::istringstream is("# nothing but comments\n");
  TraceFileGenerator gen(is);
  EXPECT_FALSE(gen.valid());
}

TEST(TraceFileGenerator, DrivesTheSimulatorEndToEnd) {
  // Replay a mixed trace through the full driver and verify both the
  // completion accounting and the memory side effects.
  std::vector<RequestDesc> requests;
  for (u64 i = 0; i < 32; ++i) {
    requests.push_back({i % 2 == 0 ? Command::Wr16 : Command::Rd16,
                        0x100 + 16 * i});
  }
  TraceFileGenerator gen(requests);

  Simulator sim = test::make_simple_sim();
  DriverConfig dcfg;
  dcfg.total_requests = 64;  // two full laps of the trace
  dcfg.max_cycles = 100000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 64u);
  EXPECT_EQ(r.errors, 0u);
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(s.writes, 32u);  // 16 distinct writes, replayed twice
  EXPECT_EQ(s.reads, 32u);
}

}  // namespace
}  // namespace hmcsim
