#include "packet/packet.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace hmcsim {
namespace {

std::vector<u64> make_payload(usize words, u64 seed = 7) {
  SplitMix64 rng(seed);
  std::vector<u64> payload(words);
  for (auto& w : payload) w = rng.next();
  return payload;
}

RequestFields sample_request(Command cmd) {
  RequestFields f;
  f.cmd = cmd;
  f.addr = 0x2'2345'6780ull & spec::kAddrMask;
  f.tag = 0x1A5;
  f.cub = 3;
  f.slid = 5;
  f.seq = 2;
  f.rtc = 1;
  f.pb = true;
  f.frp = 0xAB;
  f.rrp = 0xCD;
  return f;
}

// ---- request round trips over the entire command set ----------------------

class RequestRoundTrip : public ::testing::TestWithParam<Command> {};

TEST_P(RequestRoundTrip, EncodeDecodePreservesEveryField) {
  const Command cmd = GetParam();
  const RequestFields in = sample_request(cmd);
  const auto payload = make_payload(request_data_bytes(cmd) / 8);

  PacketBuffer pkt;
  ASSERT_EQ(encode_request(in, payload, pkt), Status::Ok);
  EXPECT_EQ(pkt.flits, request_flits(cmd));

  RequestFields out;
  ASSERT_EQ(decode_request(pkt, out), Status::Ok);
  EXPECT_EQ(out.cmd, in.cmd);
  EXPECT_EQ(out.addr, in.addr);
  EXPECT_EQ(out.tag, in.tag);
  EXPECT_EQ(out.cub, in.cub);
  EXPECT_EQ(out.slid, in.slid);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.rtc, in.rtc);
  EXPECT_EQ(out.pb, in.pb);
  EXPECT_EQ(out.frp, in.frp);
  EXPECT_EQ(out.rrp, in.rrp);
  EXPECT_EQ(out.lng, pkt.flits);

  // Payload words survive untouched.
  ASSERT_EQ(pkt.payload().size(), payload.size());
  for (usize i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(pkt.payload()[i], payload[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRequestCommands, RequestRoundTrip,
    ::testing::Values(Command::Wr16, Command::Wr32, Command::Wr48,
                      Command::Wr64, Command::Wr80, Command::Wr96,
                      Command::Wr112, Command::Wr128, Command::ModeWrite,
                      Command::BitWrite, Command::TwoAdd8, Command::Add16,
                      Command::PostedWr16, Command::PostedWr64,
                      Command::PostedWr128, Command::PostedBitWrite,
                      Command::PostedTwoAdd8, Command::PostedAdd16,
                      Command::ModeRead, Command::Rd16, Command::Rd32,
                      Command::Rd48, Command::Rd64, Command::Rd80,
                      Command::Rd96, Command::Rd112, Command::Rd128),
    [](const auto& info) {
      std::string name{to_string(info.param)};
      for (auto& ch : name) {
        if (ch == '_') ch = 'x';
      }
      return name;
    });

// ---- flow-control packets ---------------------------------------------------

class FlowRoundTrip : public ::testing::TestWithParam<Command> {};

TEST_P(FlowRoundTrip, SingleFlitEncodeDecode) {
  // Flow-control packets (NULL/PRET/TRET/IRTRY) ride the request format as
  // single-FLIT packets with no meaningful address.
  RequestFields f;
  f.cmd = GetParam();
  f.rrp = 0x11;
  f.frp = 0x22;
  f.rtc = 3;
  PacketBuffer pkt;
  ASSERT_EQ(encode_request(f, {}, pkt), Status::Ok);
  EXPECT_EQ(pkt.flits, 1u);
  RequestFields out;
  ASSERT_EQ(decode_request(pkt, out), Status::Ok);
  EXPECT_EQ(out.cmd, f.cmd);
  EXPECT_EQ(out.rrp, 0x11);
  EXPECT_EQ(out.frp, 0x22);
  EXPECT_EQ(out.rtc, 3);
  EXPECT_EQ(validate_packet(pkt), Status::Ok);
}

INSTANTIATE_TEST_SUITE_P(FlowCommands, FlowRoundTrip,
                         ::testing::Values(Command::Null, Command::Pret,
                                           Command::Tret, Command::Irtry),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           return name;
                         });

// ---- response round trips ---------------------------------------------------

TEST(ResponsePacket, ReadResponseRoundTrip) {
  ResponseFields in;
  in.cmd = Command::ReadResponse;
  in.tag = 0x155;
  in.cub = 6;
  in.slid = 7;
  in.errstat = ErrStat::Ok;
  in.dinv = false;
  in.seq = 5;
  in.rtc = 3;
  in.frp = 0x12;
  in.rrp = 0x34;
  const auto payload = make_payload(8);  // 64-byte read

  PacketBuffer pkt;
  ASSERT_EQ(encode_response(in, payload, pkt), Status::Ok);
  EXPECT_EQ(pkt.flits, 5u);

  ResponseFields out;
  ASSERT_EQ(decode_response(pkt, out), Status::Ok);
  EXPECT_EQ(out.cmd, in.cmd);
  EXPECT_EQ(out.tag, in.tag);
  EXPECT_EQ(out.cub, in.cub);
  EXPECT_EQ(out.slid, in.slid);
  EXPECT_EQ(out.errstat, in.errstat);
  EXPECT_EQ(out.dinv, in.dinv);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.rtc, in.rtc);
  EXPECT_EQ(out.frp, in.frp);
  EXPECT_EQ(out.rrp, in.rrp);
}

TEST(ResponsePacket, ErrorResponseCarriesErrstat) {
  ResponseFields in;
  in.cmd = Command::Error;
  in.tag = 9;
  in.cub = 1;
  in.errstat = ErrStat::Unroutable;
  in.dinv = true;
  PacketBuffer pkt;
  ASSERT_EQ(encode_response(in, {}, pkt), Status::Ok);
  EXPECT_EQ(pkt.flits, 1u);
  ResponseFields out;
  ASSERT_EQ(decode_response(pkt, out), Status::Ok);
  EXPECT_EQ(out.errstat, ErrStat::Unroutable);
  EXPECT_TRUE(out.dinv);
}

TEST(ResponsePacket, EveryResponseLengthRoundTrips) {
  for (usize data_flits = 0; data_flits <= 8; ++data_flits) {
    ResponseFields in;
    in.cmd = Command::ReadResponse;
    in.tag = static_cast<Tag>(data_flits);
    const auto payload = make_payload(data_flits * 2);
    PacketBuffer pkt;
    ASSERT_EQ(encode_response(in, payload, pkt), Status::Ok);
    EXPECT_EQ(pkt.flits, data_flits + 1);
    ResponseFields out;
    ASSERT_EQ(decode_response(pkt, out), Status::Ok);
    EXPECT_EQ(out.lng, data_flits + 1);
  }
}

// ---- validation and CRC ------------------------------------------------------

TEST(PacketValidation, RejectsWrongPayloadSize) {
  const RequestFields f = sample_request(Command::Wr64);
  PacketBuffer pkt;
  EXPECT_EQ(encode_request(f, make_payload(7), pkt), Status::InvalidArgument);
  EXPECT_EQ(encode_request(f, make_payload(9), pkt), Status::InvalidArgument);
  EXPECT_EQ(encode_request(f, make_payload(8), pkt), Status::Ok);
}

TEST(PacketValidation, RejectsOversizedAddressAndTag) {
  RequestFields f = sample_request(Command::Rd16);
  f.addr = spec::kAddrMask + 1;
  PacketBuffer pkt;
  EXPECT_EQ(encode_request(f, {}, pkt), Status::InvalidArgument);
  f = sample_request(Command::Rd16);
  f.tag = spec::kMaxTag + 1;
  EXPECT_EQ(encode_request(f, {}, pkt), Status::InvalidArgument);
}

TEST(PacketValidation, RejectsResponseCommandInRequestEncoder) {
  RequestFields f = sample_request(Command::Rd16);
  f.cmd = Command::ReadResponse;
  PacketBuffer pkt;
  EXPECT_EQ(encode_request(f, {}, pkt), Status::InvalidArgument);
}

TEST(PacketValidation, RequestDecoderRejectsResponses) {
  ResponseFields rf;
  rf.cmd = Command::WriteResponse;
  PacketBuffer pkt;
  ASSERT_EQ(encode_response(rf, {}, pkt), Status::Ok);
  RequestFields out;
  EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket);
}

TEST(PacketValidation, CrcDetectsCorruption) {
  const RequestFields f = sample_request(Command::Wr32);
  PacketBuffer pkt;
  ASSERT_EQ(encode_request(f, make_payload(4), pkt), Status::Ok);
  EXPECT_TRUE(check_crc(pkt));

  // Flip one payload bit: decode must fail until the CRC is resealed.
  pkt.words[2] ^= 0x10;
  EXPECT_FALSE(check_crc(pkt));
  RequestFields out;
  EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket);
  seal_crc(pkt);
  EXPECT_EQ(decode_request(pkt, out), Status::Ok);
}

TEST(PacketValidation, CrcCoversHeaderAndTailFields) {
  const RequestFields f = sample_request(Command::Rd64);
  PacketBuffer pkt;
  ASSERT_EQ(encode_request(f, {}, pkt), Status::Ok);
  const u32 crc_before = field::crc_of(pkt.tail());
  // Mutating the header changes the packet CRC.
  pkt.words[0] = deposit(pkt.words[0], 15, 9, 0x0F);  // different TAG
  seal_crc(pkt);
  EXPECT_NE(field::crc_of(pkt.tail()), crc_before);
}

TEST(PacketValidation, ValidatePacketChecksLngConsistency) {
  const RequestFields f = sample_request(Command::Wr16);
  PacketBuffer pkt;
  ASSERT_EQ(encode_request(f, make_payload(2), pkt), Status::Ok);
  EXPECT_EQ(validate_packet(pkt), Status::Ok);

  // Corrupt LNG (and reseal the CRC so only the length check can fire).
  PacketBuffer bad = pkt;
  bad.words[0] = deposit(bad.words[0], 7, 4, 5);
  seal_crc(bad);
  EXPECT_EQ(validate_packet(bad), Status::MalformedPacket);

  // DLN mismatch is also caught.
  bad = pkt;
  bad.words[0] = deposit(bad.words[0], 11, 4, 7);
  seal_crc(bad);
  EXPECT_EQ(validate_packet(bad), Status::MalformedPacket);
}

TEST(PacketValidation, ValidatePacketRejectsUnknownCommand) {
  PacketBuffer pkt;
  pkt.flits = 1;
  pkt.words[0] = deposit(0, 0, 6, 0x3f);  // 0x3f is not a defined command
  pkt.words[0] = deposit(pkt.words[0], 7, 4, 1);
  pkt.words[0] = deposit(pkt.words[0], 11, 4, 1);
  pkt.words[1] = 0;
  seal_crc(pkt);
  EXPECT_EQ(validate_packet(pkt), Status::MalformedPacket);
}

TEST(PacketValidation, ZeroAndOversizedFlitCounts) {
  PacketBuffer pkt;
  pkt.flits = 0;
  RequestFields out;
  EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket);
  pkt.flits = 10;
  EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket);
}

TEST(PacketBuffer, HeaderTailAccessors) {
  PacketBuffer pkt;
  pkt.flits = 3;
  pkt.words[0] = 0xAAA;
  pkt.words[5] = 0xBBB;
  EXPECT_EQ(pkt.header(), 0xAAAu);
  EXPECT_EQ(pkt.tail(), 0xBBBu);
  EXPECT_EQ(pkt.payload().size(), 4u);
}

TEST(PacketBuffer, EqualityComparesOnlyLiveWords) {
  PacketBuffer a, b;
  a.flits = b.flits = 1;
  a.words[0] = b.words[0] = 1;
  a.words[1] = b.words[1] = 2;
  // Garbage beyond the live words must not affect equality.
  a.words[17] = 0xdead;
  b.words[17] = 0xbeef;
  EXPECT_EQ(a, b);
  b.words[1] = 3;
  EXPECT_FALSE(a == b);
}

TEST(PacketFields, RawFieldHelpers) {
  const u64 header = field::make_request_header(Command::Rd64, 1, 0x1FF,
                                                0x3'FFFF'FFFFull, 7);
  EXPECT_EQ(field::cmd_of(header), Command::Rd64);
  EXPECT_EQ(field::lng_of(header), 1u);
  EXPECT_EQ(field::dln_of(header), 1u);
  EXPECT_EQ(field::tag_of(header), 0x1FFu);
  EXPECT_EQ(field::adrs_of(header), 0x3'FFFF'FFFFull);
  EXPECT_EQ(field::cub_of(header), 7u);

  const u64 tail = field::make_request_tail(5, 3, 2, true, 0xAA, 0xBB);
  EXPECT_EQ(field::request_slid_of(tail), 5u);
  EXPECT_EQ(field::crc_of(tail), 0u);  // CRC deposited separately
}

}  // namespace
}  // namespace hmcsim
