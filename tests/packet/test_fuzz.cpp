// Robustness fuzzing: arbitrary byte soup must never crash the codec, the
// trace parser, or the simulator's ingress validation — only clean
// rejections or internally consistent accepts.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "common/random.hpp"
#include "packet/packet.hpp"
#include "tests/core/helpers.hpp"
#include "trace/reader.hpp"
#include "workload/trace_file.hpp"

namespace hmcsim {
namespace {

PacketBuffer random_buffer(SplitMix64& rng) {
  PacketBuffer pkt;
  pkt.flits = static_cast<u32>(rng.next_below(11));  // 0..10: includes junk
  for (auto& w : pkt.words) w = rng.next();
  return pkt;
}

TEST(PacketFuzz, DecodeRequestNeverAcceptsGarbage) {
  SplitMix64 rng(0xF00D);
  int accepted = 0;
  for (int i = 0; i < 50000; ++i) {
    PacketBuffer pkt = random_buffer(rng);
    RequestFields out;
    const Status s = decode_request(pkt, out);
    if (ok(s)) {
      ++accepted;
      // An accepted packet must satisfy every structural invariant.
      EXPECT_TRUE(is_request(out.cmd) || is_flow(out.cmd));
      EXPECT_EQ(out.lng, pkt.flits);
      EXPECT_TRUE(check_crc(pkt));
    }
  }
  // Random 32-bit CRCs pass ~2^-32 of the time: zero accepts expected.
  EXPECT_EQ(accepted, 0);
}

TEST(PacketFuzz, DecodeResponseNeverAcceptsGarbage) {
  SplitMix64 rng(0xBEEF);
  for (int i = 0; i < 50000; ++i) {
    PacketBuffer pkt = random_buffer(rng);
    ResponseFields out;
    EXPECT_NE(decode_response(pkt, out), Status::Internal);
  }
}

TEST(PacketFuzz, ResealedGarbageDecodesConsistently) {
  // Force the CRC to be valid: decode then must depend only on the
  // structural fields, and an accepted packet must re-encode to the same
  // bits.
  SplitMix64 rng(0xCAFE);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    PacketBuffer pkt = random_buffer(rng);
    if (pkt.flits < spec::kMinPacketFlits ||
        pkt.flits > spec::kMaxPacketFlits) {
      continue;
    }
    seal_crc(pkt);
    RequestFields out;
    if (!ok(decode_request(pkt, out))) continue;
    ++accepted;
    // Re-encode from the decoded fields: header/tail round-trip except the
    // reserved bits the encoder zeroes.
    std::vector<u64> payload(pkt.payload().begin(), pkt.payload().end());
    PacketBuffer re;
    ASSERT_EQ(encode_request(out, payload, re), Status::Ok);
    RequestFields out2;
    ASSERT_EQ(decode_request(re, out2), Status::Ok);
    EXPECT_EQ(out.cmd, out2.cmd);
    EXPECT_EQ(out.addr, out2.addr);
    EXPECT_EQ(out.tag, out2.tag);
    EXPECT_EQ(out.slid, out2.slid);
  }
  // CRC-valid packets with random headers DO sometimes hit valid command +
  // length combinations; the loop just must not crash or self-contradict.
  EXPECT_GE(accepted, 0);
}

TEST(PacketFuzz, SimulatorSendSurvivesGarbage) {
  Simulator sim = test::make_simple_sim();
  SplitMix64 rng(0xD00D);
  for (int i = 0; i < 20000; ++i) {
    PacketBuffer pkt = random_buffer(rng);
    const Status s = sim.send(0, static_cast<u32>(rng.next_below(4)), pkt);
    EXPECT_TRUE(s == Status::MalformedPacket || s == Status::Ok ||
                s == Status::Stalled)
        << to_string(s);
  }
  // Whatever was accepted must drain without deadlock or crash.
  (void)test::drain_all(sim, 5000);
}

TEST(PacketFuzz, BitFlipsInSealedPacketsAlwaysRejected) {
  // CRC-32K has Hamming distance >= 4 at these lengths: flipping 1..3 bits
  // anywhere in a sealed FLIT stream (header, payload, tail, or the CRC
  // field itself) must always be detected — no false accepts, no crashes.
  SplitMix64 rng(0x5EED);
  const Command kCmds[] = {Command::Rd16, Command::Rd64, Command::Wr32,
                           Command::Wr128, Command::Add16};
  int rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    RequestFields f;
    f.cmd = kCmds[rng.next_below(std::size(kCmds))];
    f.addr = (rng.next() & spec::kAddrMask) & ~u64{15};
    f.tag = static_cast<Tag>(rng.next_below(512));
    f.cub = 0;
    f.slid = static_cast<u8>(rng.next_below(4));
    std::vector<u64> payload(request_data_bytes(f.cmd) / 8);
    for (auto& w : payload) w = rng.next();
    PacketBuffer pkt;
    ASSERT_EQ(encode_request(f, payload, pkt), Status::Ok);
    ASSERT_TRUE(check_crc(pkt));

    const u32 flips = 1 + static_cast<u32>(rng.next_below(3));
    const usize used_bits = usize{pkt.flits} * 2 * 64;
    std::set<usize> bits;
    while (bits.size() < flips) bits.insert(rng.next_below(used_bits));
    for (const usize bit : bits) {
      pkt.words[bit / 64] ^= u64{1} << (bit % 64);
    }
    EXPECT_FALSE(check_crc(pkt));
    RequestFields out;
    EXPECT_NE(decode_request(pkt, out), Status::Ok);
    ++rejected;
  }
  EXPECT_EQ(rejected, 20000);
}

TEST(TraceFuzz, ParserSurvivesRandomText) {
  SplitMix64 rng(0x7ACE);
  const std::string alphabet =
      "HMCSIM_TRACE :0123456789abcdefxs-RDWR_QNULL\n\t ";
  for (int i = 0; i < 20000; ++i) {
    std::string line;
    const usize len = rng.next_below(60);
    for (usize c = 0; c < len; ++c) {
      line += alphabet[rng.next_below(alphabet.size())];
    }
    (void)parse_trace_line(line);  // must not crash; result is optional
    RequestDesc desc;
    (void)parse_trace_request(line, desc);
  }
  SUCCEED();
}

TEST(TraceFuzz, MutatedValidLinesNeverMisparse) {
  // Take a valid trace line, mutate one character at a time: every parse
  // either fails cleanly or yields a record (possibly different), never
  // crashes or returns impossible field values.
  TraceRecord rec;
  rec.event = TraceEvent::ReadRequest;
  rec.stage = 4;
  rec.cycle = 1234;
  rec.dev = 0;
  rec.vault = 3;
  rec.bank = 1;
  rec.addr = 0xABC0;
  rec.tag = 99;
  rec.cmd = Command::Rd64;
  const std::string base = TextSink::format(rec);
  for (usize pos = 0; pos < base.size(); ++pos) {
    for (const char c : {'0', 'x', ':', ' ', 'Z', '-'}) {
      std::string mutated = base;
      mutated[pos] = c;
      const auto parsed = parse_trace_line(mutated);
      if (parsed) {
        EXPECT_LE(parsed->stage, 6);
        EXPECT_LE(parsed->addr, spec::kAddrMask);
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace hmcsim
