// Seeded round-trip fuzz over every HMC 1.0 packet variant.
//
// test_fuzz.cpp throws byte soup at the decoders; this file attacks from
// the other side: for *every* command the spec defines — each request
// class, each posted variant, each flow packet, each response, at every
// legal length from 1 to 9 FLITs — encode from randomized fields and
// require the exact identity
//
//   encode(fields, payload) |> decode == (fields, payload),
//
// then re-encode the decoded fields and require the byte-identical buffer
// (the wire format has no hidden state).  Sealed packets additionally get
// 1..3 random bit flips anywhere in the FLIT stream — header, payload,
// tail, or the CRC field itself — and must always be rejected cleanly, and
// junk deposited into reserved header bits must break the CRC, never leak
// into decoded fields.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hpp"
#include "packet/packet.hpp"

namespace hmcsim {
namespace {

/// Every CMD encoding the HMC 1.0 tables define for the request direction
/// (flow + write-class + atomics + mode + reads), i.e. everything
/// encode_request accepts.
constexpr Command kRequestVariants[] = {
    Command::Null,          Command::Pret,
    Command::Tret,          Command::Irtry,
    Command::Wr16,          Command::Wr32,
    Command::Wr48,          Command::Wr64,
    Command::Wr80,          Command::Wr96,
    Command::Wr112,         Command::Wr128,
    Command::ModeWrite,     Command::BitWrite,
    Command::TwoAdd8,       Command::Add16,
    Command::PostedWr16,    Command::PostedWr32,
    Command::PostedWr48,    Command::PostedWr64,
    Command::PostedWr80,    Command::PostedWr96,
    Command::PostedWr112,   Command::PostedWr128,
    Command::PostedBitWrite, Command::PostedTwoAdd8,
    Command::PostedAdd16,   Command::ModeRead,
    Command::Rd16,          Command::Rd32,
    Command::Rd48,          Command::Rd64,
    Command::Rd80,          Command::Rd96,
    Command::Rd112,         Command::Rd128,
};

constexpr Command kResponseVariants[] = {
    Command::ReadResponse,     Command::WriteResponse,
    Command::ModeReadResponse, Command::ModeWriteResponse,
    Command::Error,
};

constexpr ErrStat kErrStats[] = {
    ErrStat::Ok,             ErrStat::Unroutable,
    ErrStat::InvalidAddress, ErrStat::InvalidCommand,
    ErrStat::LengthMismatch, ErrStat::CrcFailure,
    ErrStat::ProtocolError,  ErrStat::RegisterFault,
    ErrStat::DramDbe,        ErrStat::VaultFailed,
};

RequestFields random_request_fields(Command cmd, SplitMix64& rng) {
  RequestFields f;
  f.cmd = cmd;
  f.tag = static_cast<Tag>(rng.next_below(u64{spec::kMaxTag} + 1));
  f.addr = rng.next() & spec::kAddrMask;
  f.cub = static_cast<u32>(rng.next_below(8));
  f.slid = static_cast<u32>(rng.next_below(8));
  f.seq = static_cast<u8>(rng.next_below(8));
  f.rtc = static_cast<u8>(rng.next_below(8));
  f.pb = rng.next_below(2) != 0;
  f.frp = static_cast<u8>(rng.next());
  f.rrp = static_cast<u8>(rng.next());
  return f;
}

ResponseFields random_response_fields(Command cmd, SplitMix64& rng) {
  ResponseFields f;
  f.cmd = cmd;
  f.tag = static_cast<Tag>(rng.next_below(u64{spec::kMaxTag} + 1));
  f.cub = static_cast<u32>(rng.next_below(8));
  f.slid = static_cast<u32>(rng.next_below(8));
  f.errstat = kErrStats[rng.next_below(std::size(kErrStats))];
  f.dinv = rng.next_below(2) != 0;
  f.seq = static_cast<u8>(rng.next_below(8));
  f.rtc = static_cast<u8>(rng.next_below(8));
  f.frp = static_cast<u8>(rng.next());
  f.rrp = static_cast<u8>(rng.next());
  return f;
}

std::vector<u64> random_payload(usize words, SplitMix64& rng) {
  std::vector<u64> payload(words);
  for (u64& w : payload) w = rng.next();
  return payload;
}

void flip_random_bits(PacketBuffer& pkt, u32 flips, SplitMix64& rng) {
  const usize used_bits = usize{pkt.flits} * 2 * 64;
  std::set<usize> bits;
  while (bits.size() < flips) bits.insert(rng.next_below(used_bits));
  for (const usize bit : bits) {
    pkt.words[bit / 64] ^= u64{1} << (bit % 64);
  }
}

TEST(PacketRoundTripFuzz, EveryRequestVariantRoundTripsExactly) {
  SplitMix64 rng(0x9e3779b97f4a7c15ull);
  for (const Command cmd : kRequestVariants) {
    SCOPED_TRACE(to_string(cmd));
    for (int iter = 0; iter < 500; ++iter) {
      const RequestFields f = random_request_fields(cmd, rng);
      const std::vector<u64> payload =
          random_payload(request_data_bytes(cmd) / 8, rng);
      PacketBuffer pkt;
      ASSERT_EQ(encode_request(f, payload, pkt), Status::Ok);
      ASSERT_EQ(pkt.flits, request_flits(cmd));
      ASSERT_TRUE(check_crc(pkt));
      ASSERT_EQ(validate_packet(pkt), Status::Ok);

      RequestFields out;
      ASSERT_EQ(decode_request(pkt, out), Status::Ok);
      EXPECT_EQ(out.cmd, f.cmd);
      EXPECT_EQ(out.lng, pkt.flits);
      EXPECT_EQ(out.tag, f.tag);
      EXPECT_EQ(out.addr, f.addr);
      EXPECT_EQ(out.cub, f.cub);
      EXPECT_EQ(out.slid, f.slid);
      EXPECT_EQ(out.seq, f.seq);
      EXPECT_EQ(out.rtc, f.rtc);
      EXPECT_EQ(out.pb, f.pb);
      EXPECT_EQ(out.frp, f.frp);
      EXPECT_EQ(out.rrp, f.rrp);
      for (usize w = 0; w < payload.size(); ++w) {
        ASSERT_EQ(pkt.payload()[w], payload[w]) << "payload word " << w;
      }

      // Decoded fields re-encode to the byte-identical packet.
      PacketBuffer re;
      ASSERT_EQ(encode_request(out, payload, re), Status::Ok);
      EXPECT_EQ(re, pkt);
    }
  }
}

TEST(PacketRoundTripFuzz, EveryResponseVariantRoundTripsAtEveryLength) {
  // Response length is data-dependent (1 + payload FLITs), so sweep every
  // legal length 1..9 for every response command rather than only the
  // natural read sizes.
  SplitMix64 rng(0xbf58476d1ce4e5b9ull);
  for (const Command cmd : kResponseVariants) {
    SCOPED_TRACE(to_string(cmd));
    for (u32 lng = 1; lng <= spec::kMaxPacketFlits; ++lng) {
      for (int iter = 0; iter < 60; ++iter) {
        const ResponseFields f = random_response_fields(cmd, rng);
        const std::vector<u64> payload =
            random_payload(usize{lng} * 2 - 2, rng);
        PacketBuffer pkt;
        ASSERT_EQ(encode_response(f, payload, pkt), Status::Ok);
        ASSERT_EQ(pkt.flits, lng);
        ASSERT_TRUE(check_crc(pkt));
        ASSERT_EQ(validate_packet(pkt), Status::Ok);

        ResponseFields out;
        ASSERT_EQ(decode_response(pkt, out), Status::Ok);
        EXPECT_EQ(out.cmd, f.cmd);
        EXPECT_EQ(out.lng, lng);
        EXPECT_EQ(out.tag, f.tag);
        EXPECT_EQ(out.cub, f.cub);
        EXPECT_EQ(out.slid, f.slid);
        EXPECT_EQ(out.errstat, f.errstat);
        EXPECT_EQ(out.dinv, f.dinv);
        EXPECT_EQ(out.seq, f.seq);
        EXPECT_EQ(out.rtc, f.rtc);
        EXPECT_EQ(out.frp, f.frp);
        EXPECT_EQ(out.rrp, f.rrp);

        PacketBuffer re;
        ASSERT_EQ(encode_response(out, payload, re), Status::Ok);
        EXPECT_EQ(re, pkt);
      }
    }
  }
}

TEST(PacketRoundTripFuzz, BitFlipsRejectedForEveryVariant) {
  // 1..3 flipped bits anywhere in the sealed stream — including inside the
  // CRC field — must always be detected for every variant and length.
  SplitMix64 rng(0x94d049bb133111ebull);
  for (const Command cmd : kRequestVariants) {
    SCOPED_TRACE(to_string(cmd));
    for (int iter = 0; iter < 200; ++iter) {
      const RequestFields f = random_request_fields(cmd, rng);
      const std::vector<u64> payload =
          random_payload(request_data_bytes(cmd) / 8, rng);
      PacketBuffer pkt;
      ASSERT_EQ(encode_request(f, payload, pkt), Status::Ok);
      flip_random_bits(pkt, 1 + static_cast<u32>(rng.next_below(3)), rng);
      EXPECT_FALSE(check_crc(pkt));
      RequestFields out;
      EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket);
      EXPECT_EQ(validate_packet(pkt), Status::MalformedPacket);
    }
  }
  for (const Command cmd : kResponseVariants) {
    SCOPED_TRACE(to_string(cmd));
    for (u32 lng = 1; lng <= spec::kMaxPacketFlits; ++lng) {
      for (int iter = 0; iter < 30; ++iter) {
        const ResponseFields f = random_response_fields(cmd, rng);
        const std::vector<u64> payload =
            random_payload(usize{lng} * 2 - 2, rng);
        PacketBuffer pkt;
        ASSERT_EQ(encode_response(f, payload, pkt), Status::Ok);
        flip_random_bits(pkt, 1 + static_cast<u32>(rng.next_below(3)), rng);
        EXPECT_FALSE(check_crc(pkt));
        ResponseFields out;
        EXPECT_EQ(decode_response(pkt, out), Status::MalformedPacket);
      }
    }
  }
}

TEST(PacketRoundTripFuzz, ReservedHeaderBitsNeverLeakIntoFields) {
  // Depositing junk into the reserved request-header bits [60:58] breaks
  // the seal; after resealing, the decoder must return exactly the
  // original field values — reserved bits are dead space, not hidden
  // state.
  SplitMix64 rng(0xd6e8feb86659fd93ull);
  for (const Command cmd : kRequestVariants) {
    SCOPED_TRACE(to_string(cmd));
    for (int iter = 0; iter < 100; ++iter) {
      const RequestFields f = random_request_fields(cmd, rng);
      const std::vector<u64> payload =
          random_payload(request_data_bytes(cmd) / 8, rng);
      PacketBuffer pkt;
      ASSERT_EQ(encode_request(f, payload, pkt), Status::Ok);

      const u64 junk = 1 + rng.next_below(7);
      pkt.header() = deposit(pkt.header(), 58, 3, junk);
      RequestFields out;
      EXPECT_EQ(decode_request(pkt, out), Status::MalformedPacket)
          << "reserved-bit edit must break the CRC seal";

      seal_crc(pkt);
      ASSERT_EQ(decode_request(pkt, out), Status::Ok);
      EXPECT_EQ(out.cmd, f.cmd);
      EXPECT_EQ(out.tag, f.tag);
      EXPECT_EQ(out.addr, f.addr);
      EXPECT_EQ(out.cub, f.cub);
      EXPECT_EQ(out.slid, f.slid);
    }
  }
}

TEST(PacketRoundTripFuzz, FlitCountMismatchRejectedCleanly) {
  // A sealed packet whose buffer flit count disagrees with its LNG field
  // (a torn queue slot) is rejected without touching out-params.
  SplitMix64 rng(0xa5a5a5a55a5a5a5aull);
  for (const Command cmd : kRequestVariants) {
    const RequestFields f = random_request_fields(cmd, rng);
    const std::vector<u64> payload =
        random_payload(request_data_bytes(cmd) / 8, rng);
    PacketBuffer pkt;
    ASSERT_EQ(encode_request(f, payload, pkt), Status::Ok);
    for (u32 flits = 0; flits <= spec::kMaxPacketFlits + 1; ++flits) {
      if (flits == pkt.flits) continue;
      PacketBuffer torn = pkt;
      torn.flits = flits;
      RequestFields out;
      out.tag = 0x1ff;
      EXPECT_EQ(decode_request(torn, out), Status::MalformedPacket);
      EXPECT_EQ(out.tag, 0x1ff) << "rejected decode wrote to out-params";
    }
  }
}

}  // namespace
}  // namespace hmcsim
