#include "packet/command.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hmcsim {
namespace {

const std::vector<Command>& all_commands() {
  static const std::vector<Command> kAll = {
      Command::Null, Command::Pret, Command::Tret, Command::Irtry,
      Command::Wr16, Command::Wr32, Command::Wr48, Command::Wr64,
      Command::Wr80, Command::Wr96, Command::Wr112, Command::Wr128,
      Command::ModeWrite, Command::BitWrite, Command::TwoAdd8, Command::Add16,
      Command::PostedWr16, Command::PostedWr32, Command::PostedWr48,
      Command::PostedWr64, Command::PostedWr80, Command::PostedWr96,
      Command::PostedWr112, Command::PostedWr128, Command::PostedBitWrite,
      Command::PostedTwoAdd8, Command::PostedAdd16, Command::ModeRead,
      Command::Rd16, Command::Rd32, Command::Rd48, Command::Rd64,
      Command::Rd80, Command::Rd96, Command::Rd112, Command::Rd128,
      Command::ReadResponse, Command::WriteResponse,
      Command::ModeReadResponse, Command::ModeWriteResponse, Command::Error};
  return kAll;
}

TEST(Command, ValidityCoversExactlyTheCommandSet) {
  int valid = 0;
  for (unsigned raw = 0; raw < 64; ++raw) {
    if (is_valid_command(static_cast<u8>(raw))) ++valid;
  }
  EXPECT_EQ(valid, static_cast<int>(all_commands().size()));
  for (const Command c : all_commands()) {
    EXPECT_TRUE(is_valid_command(static_cast<u8>(c))) << to_string(c);
  }
}

TEST(Command, ClassificationIsAPartition) {
  // Every command is exactly one of: flow, request, response.
  for (const Command c : all_commands()) {
    const int classes = (is_flow(c) ? 1 : 0) + (is_request(c) ? 1 : 0) +
                        (is_response(c) ? 1 : 0);
    EXPECT_EQ(classes, 1) << to_string(c);
  }
}

TEST(Command, ReadWriteEncodingRanges) {
  EXPECT_TRUE(is_read(Command::Rd16));
  EXPECT_TRUE(is_read(Command::Rd128));
  EXPECT_FALSE(is_read(Command::Wr16));
  EXPECT_TRUE(is_write(Command::Wr16));
  EXPECT_TRUE(is_write(Command::PostedWr128));
  EXPECT_FALSE(is_write(Command::Rd64));
  EXPECT_FALSE(is_write(Command::BitWrite));  // atomic, not plain write
}

TEST(Command, PostedClassification) {
  EXPECT_TRUE(is_posted(Command::PostedWr64));
  EXPECT_TRUE(is_posted(Command::PostedBitWrite));
  EXPECT_TRUE(is_posted(Command::PostedTwoAdd8));
  EXPECT_TRUE(is_posted(Command::PostedAdd16));
  EXPECT_FALSE(is_posted(Command::Wr64));
  EXPECT_FALSE(is_posted(Command::Add16));
  EXPECT_FALSE(is_posted(Command::Rd16));
}

TEST(Command, AtomicClassification) {
  for (const Command c : {Command::TwoAdd8, Command::Add16, Command::BitWrite,
                          Command::PostedTwoAdd8, Command::PostedAdd16,
                          Command::PostedBitWrite}) {
    EXPECT_TRUE(is_atomic(c)) << to_string(c);
  }
  EXPECT_FALSE(is_atomic(Command::Wr16));
  EXPECT_FALSE(is_atomic(Command::Rd16));
  EXPECT_FALSE(is_atomic(Command::ModeWrite));
}

TEST(Command, RequestDataBytes) {
  EXPECT_EQ(request_data_bytes(Command::Wr16), 16u);
  EXPECT_EQ(request_data_bytes(Command::Wr64), 64u);
  EXPECT_EQ(request_data_bytes(Command::Wr128), 128u);
  EXPECT_EQ(request_data_bytes(Command::PostedWr32), 32u);
  EXPECT_EQ(request_data_bytes(Command::Rd64), 0u);
  EXPECT_EQ(request_data_bytes(Command::ModeRead), 0u);
  EXPECT_EQ(request_data_bytes(Command::ModeWrite), 16u);
  EXPECT_EQ(request_data_bytes(Command::TwoAdd8), 16u);
  EXPECT_EQ(request_data_bytes(Command::Add16), 16u);
  EXPECT_EQ(request_data_bytes(Command::BitWrite), 16u);
  EXPECT_EQ(request_data_bytes(Command::Null), 0u);
}

TEST(Command, AccessBytesCoversReads) {
  EXPECT_EQ(access_bytes(Command::Rd16), 16u);
  EXPECT_EQ(access_bytes(Command::Rd64), 64u);
  EXPECT_EQ(access_bytes(Command::Rd128), 128u);
  EXPECT_EQ(access_bytes(Command::Wr48), 48u);
  EXPECT_EQ(access_bytes(Command::Add16), 16u);
}

TEST(Command, RequestFlits) {
  // Reads are always a single FLIT (header + tail share one FLIT).
  for (const Command c : {Command::Rd16, Command::Rd64, Command::Rd128,
                          Command::ModeRead}) {
    EXPECT_EQ(request_flits(c), 1u) << to_string(c);
  }
  // Writes are 2..9 FLITs.
  EXPECT_EQ(request_flits(Command::Wr16), 2u);
  EXPECT_EQ(request_flits(Command::Wr64), 5u);
  EXPECT_EQ(request_flits(Command::Wr128), 9u);
  EXPECT_EQ(request_flits(Command::PostedWr128), 9u);
  EXPECT_EQ(request_flits(Command::Add16), 2u);
  // Nothing exceeds the 9-FLIT maximum.
  for (const Command c : all_commands()) {
    if (is_request(c) || is_flow(c)) {
      EXPECT_LE(request_flits(c), 9u) << to_string(c);
      EXPECT_GE(request_flits(c), 1u) << to_string(c);
    }
  }
}

TEST(Command, ResponseMapping) {
  EXPECT_EQ(response_command(Command::Rd64), Command::ReadResponse);
  EXPECT_EQ(response_command(Command::Wr64), Command::WriteResponse);
  EXPECT_EQ(response_command(Command::TwoAdd8), Command::WriteResponse);
  EXPECT_EQ(response_command(Command::Add16), Command::WriteResponse);
  EXPECT_EQ(response_command(Command::BitWrite), Command::WriteResponse);
  EXPECT_EQ(response_command(Command::ModeRead), Command::ModeReadResponse);
  EXPECT_EQ(response_command(Command::ModeWrite), Command::ModeWriteResponse);
  // Posted requests generate no response.
  for (const Command c : {Command::PostedWr16, Command::PostedWr128,
                          Command::PostedBitWrite, Command::PostedAdd16}) {
    EXPECT_EQ(response_command(c), Command::Null) << to_string(c);
  }
}

TEST(Command, ResponseFlits) {
  EXPECT_EQ(response_flits(Command::Rd16), 2u);
  EXPECT_EQ(response_flits(Command::Rd128), 9u);
  EXPECT_EQ(response_flits(Command::Wr64), 1u);
  EXPECT_EQ(response_flits(Command::ModeRead), 2u);
  EXPECT_EQ(response_flits(Command::ModeWrite), 1u);
  EXPECT_EQ(response_flits(Command::PostedWr64), 0u);
}

TEST(Command, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string_view> names;
  for (const Command c : all_commands()) {
    names.push_back(to_string(c));
    EXPECT_FALSE(names.back().empty());
    EXPECT_NE(names.back(), "INVALID");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(ErrStat, Names) {
  EXPECT_EQ(to_string(ErrStat::Ok), "OK");
  EXPECT_EQ(to_string(ErrStat::Unroutable), "UNROUTABLE");
  EXPECT_EQ(to_string(ErrStat::InvalidAddress), "INVALID_ADDRESS");
  EXPECT_EQ(to_string(ErrStat::RegisterFault), "REGISTER_FAULT");
}

}  // namespace
}  // namespace hmcsim
