#include "packet/crc32.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hpp"

namespace hmcsim::crc {
namespace {

std::vector<u8> bytes_of(const std::string& s) {
  return std::vector<u8>(s.begin(), s.end());
}

TEST(Crc32k, PolynomialForms) {
  // The reflected form is the bit-reversal of the normal Koopman polynomial.
  u32 reversed = 0;
  for (int i = 0; i < 32; ++i) {
    reversed |= ((kPolyKoopman >> i) & 1u) << (31 - i);
  }
  EXPECT_EQ(reversed, kPolyKoopmanReflected);
}

TEST(Crc32k, EmptyInput) {
  // init ^ final-xor with no data folds to zero.
  EXPECT_EQ(crc32k({}), 0u);
}

TEST(Crc32k, TableMatchesBitwiseReference) {
  SplitMix64 rng(0xc0ffee);
  for (int len = 0; len < 200; ++len) {
    std::vector<u8> data(static_cast<usize>(len));
    for (auto& b : data) b = static_cast<u8>(rng.next());
    ASSERT_EQ(crc32k(data), crc32k_reference(data)) << "len " << len;
  }
}

TEST(Crc32k, IncrementalMatchesOneShot) {
  SplitMix64 rng(42);
  std::vector<u8> data(137);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  // Split at several boundaries.
  for (const usize split : {usize{0}, usize{1}, usize{64}, usize{136}}) {
    u32 state = init();
    state = update(state, {data.data(), split});
    state = update(state, {data.data() + split, data.size() - split});
    EXPECT_EQ(finish(state), crc32k(data));
  }
}

TEST(Crc32k, SingleBitFlipChangesCrc) {
  std::vector<u8> data = bytes_of("hybrid memory cube");
  const u32 base = crc32k(data);
  for (usize i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<u8>(1u << bit);
      EXPECT_NE(crc32k(data), base) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<u8>(1u << bit);
    }
  }
}

TEST(Crc32k, DetectsAdjacentSwaps) {
  std::vector<u8> data = bytes_of("0123456789abcdef");
  const u32 base = crc32k(data);
  for (usize i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == data[i + 1]) continue;
    std::swap(data[i], data[i + 1]);
    EXPECT_NE(crc32k(data), base) << "swap at " << i;
    std::swap(data[i], data[i + 1]);
  }
}

TEST(Crc32k, WordsMatchesBytesLittleEndian) {
  const std::vector<u64> words = {0x0123456789abcdefull, 0xfedcba9876543210ull,
                                  0x0000000000000001ull};
  std::vector<u8> bytes;
  for (const u64 w : words) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<u8>((w >> (8 * i)) & 0xff));
    }
  }
  EXPECT_EQ(crc32k_words(words), crc32k(bytes));
}

TEST(Crc32k, Deterministic) {
  const std::vector<u8> data = bytes_of("deterministic");
  EXPECT_EQ(crc32k(data), crc32k(data));
}

TEST(Crc32k, DistributionSanity) {
  // CRCs of consecutive integers should not collide in a small sample.
  std::vector<u32> seen;
  for (u32 i = 0; i < 1000; ++i) {
    u8 bytes[4] = {static_cast<u8>(i), static_cast<u8>(i >> 8),
                   static_cast<u8>(i >> 16), static_cast<u8>(i >> 24)};
    seen.push_back(crc32k(bytes));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace hmcsim::crc
