// The hmcsim_run exit-code contract (documented in the tool header and
// README): 0 success, 1 incomplete/bad input, 2 usage error, 3 watchdog,
// 4 resume failure, 5 checkpoint-write failure, 6 chaos invariant
// violation — plus the out-of-process kill-mid-write path
// (HMCSIM_FAILPOINT=crash) that the in-process harness cannot exercise.
// Scripts and CI key off these values, so they are pinned here against
// the real binary (HMCSIM_TOOL_PATH, injected by the build as
// $<TARGET_FILE:hmcsim_run>).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

std::string tool() { return HMCSIM_TOOL_PATH; }

/// Run a shell command, returning the process exit status (or -1 when the
/// child did not exit normally — signals are reported distinctly so a
/// crash never masquerades as an exit code).
int run(const std::string& cmd) {
  const int raw = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (raw == -1) return -1;
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
}

/// Completed (renamed) generation files in `dir` — temp debris excluded.
std::vector<std::string> list_bins(const std::string& dir) {
  std::vector<std::string> bins;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".bin") {
      bins.push_back(name);
    }
  }
  return bins;
}

class ExitCodes : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hmcsim_exit_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

TEST_F(ExitCodes, ZeroOnSuccess) {
  EXPECT_EQ(run(tool() + " --preset a --requests 4096"), 0);
}

TEST_F(ExitCodes, OneOnBadInputFiles) {
  EXPECT_EQ(run(tool() + " --config " + path("missing.conf")), 1);
  std::ofstream(path("bad.trace")) << "R 0x100 64\ngarbage here\n";
  EXPECT_EQ(run(tool() + " --workload trace --trace-in " +
                path("bad.trace") + " --requests 16"),
            1);
}

TEST_F(ExitCodes, TwoOnUsageErrors) {
  EXPECT_EQ(run(tool() + " --no-such-flag"), 2);
  EXPECT_EQ(run(tool() + " --requests 10abc"), 2);
  EXPECT_EQ(run(tool() + " --resume"), 2);  // --resume needs a directory
}

TEST_F(ExitCodes, ThreeOnWatchdog) {
  EXPECT_EQ(run(tool() +
                " --preset a --requests 64 --wedge-vaults 0xffff"
                " --watchdog 2000"),
            3);
}

TEST_F(ExitCodes, TwoOnWedgeMaskBeyondVaultCount) {
  // Preset a has 16 vaults; naming vault 16 is a typo'd experiment and must
  // be refused as a usage error before anything runs.
  EXPECT_EQ(run(tool() +
                " --preset a --requests 64 --wedge-vaults 0x10000"
                " --watchdog 2000"),
            2);
}

TEST_F(ExitCodes, SixOnChaosInvariantViolation) {
  // The break_invariant test hook corrupts the link-token ledger; the
  // live checker must catch it and pin the dedicated exit code.
  std::ofstream(path("broken.plan")) << "at 200 break_invariant 7\n";
  EXPECT_EQ(run(tool() +
                " --preset a --requests 4096 --link-protocol 1"
                " --link-retry-limit 8 --chaos-invariants 64 --chaos-plan " +
                path("broken.plan")),
            6);
}

TEST_F(ExitCodes, TwoOnChaosPlanErrors) {
  EXPECT_EQ(run(tool() + " --chaos-plan " + path("missing.plan")), 2);
  std::ofstream(path("bad.plan")) << "at 10 melt_cube 1\n";
  EXPECT_EQ(run(tool() + " --chaos-plan " + path("bad.plan")), 2);
  // Structural indices are validated against the configured geometry.
  std::ofstream(path("range.plan")) << "at 10 kill_link 99\n";
  EXPECT_EQ(run(tool() + " --preset a --chaos-plan " + path("range.plan")), 2);
  // --chaos-shrink without a campaign to shrink is a usage error.
  EXPECT_EQ(run(tool() + " --chaos-shrink " + path("out.plan")), 2);
}

TEST_F(ExitCodes, ChaosShrinkEmitsAReplayableReproducer) {
  // A noisy campaign around one real corruption: the shrinker must write a
  // reproducer that trips the same violation standalone (exit 6 again).
  std::ofstream(path("noisy.plan"))
      << "at 50 link_error_ppm 2000\n"
      << "at 100 link_burst 2\n"
      << "at 200 break_invariant 7\n"
      << "at 400 dram_sbe_ppm 500\n";
  const std::string base = " --preset a --requests 4096 --link-protocol 1"
                           " --link-retry-limit 8 --chaos-invariants 64";
  EXPECT_EQ(run(tool() + base + " --chaos-plan " + path("noisy.plan") +
                " --chaos-shrink " + path("min.plan")),
            6);
  std::ifstream min(path("min.plan"));
  ASSERT_TRUE(min.good()) << "shrinker wrote no reproducer";
  std::stringstream contents;
  contents << min.rdbuf();
  EXPECT_NE(contents.str().find("break_invariant"), std::string::npos);
  // The minimal plan replays the violation on its own.
  EXPECT_EQ(run(tool() + base + " --chaos-plan " + path("min.plan")), 6);
}

TEST_F(ExitCodes, FourOnResumeFailure) {
  const std::string ckpt = (dir_ / "ckpt").string();
  fs::create_directories(ckpt);
  std::ofstream(ckpt + "/ckpt-000000000000.bin") << "definitely not valid";
  EXPECT_EQ(run(tool() + " --requests 64 --checkpoint-dir " + ckpt +
                " --resume"),
            4);
  // An *empty* directory is not a failure: fresh start, clean exit.
  const std::string empty = (dir_ / "empty").string();
  fs::create_directories(empty);
  EXPECT_EQ(run(tool() + " --requests 4096 --checkpoint-dir " + empty +
                " --checkpoint-interval 500 --resume"),
            0);
}

TEST_F(ExitCodes, FiveOnCheckpointWriteFailure) {
  const std::string ckpt = (dir_ / "ckpt").string();
  EXPECT_EQ(run("HMCSIM_FAILPOINT=enospc:1000 " + tool() +
                " --requests 8192 --checkpoint-dir " + ckpt +
                " --checkpoint-interval 200"),
            5);
  // The atomic writer must have left no renamed generation behind.
  EXPECT_TRUE(list_bins(ckpt).empty());
}

TEST_F(ExitCodes, CrashDuringCheckpointThenResumeCompletes) {
  // The real out-of-process kill: the failpoint _exit(9)s the tool while
  // generation bytes are mid-flight to disk, leaving torn `*.tmp.*`
  // debris; --resume falls back to the newest complete generation and the
  // rerun finishes with exit 0.
  const std::string ckpt = (dir_ / "ckpt").string();
  const std::string base = " --requests 16384 --checkpoint-dir " + ckpt +
                           " --checkpoint-interval 200";
  EXPECT_EQ(run("HMCSIM_FAILPOINT=crash:600000 " + tool() + base), 9);
  EXPECT_EQ(run(tool() + base + " --resume"), 0);
}

}  // namespace
