// Backpressure and stall-signal behavior: crossbar queue full on send,
// crossbar -> vault stalls, response-queue pressure, and recovery.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;
using test::small_device;

TEST(Backpressure, SendStallsWhenXbarQueueFull) {
  DeviceConfig dc = small_device();
  dc.xbar_depth = 4;
  Simulator sim = make_simple_sim(dc);
  // Without clocking, nothing drains: the 5th send must stall.
  for (Tag t = 0; t < 4; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 64 * t, t), Status::Ok);
  }
  EXPECT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x400, 9),
            Status::Stalled);
  EXPECT_EQ(sim.stats(0).send_stalls, 1u);
  // Other links are independent queues and still accept.
  EXPECT_EQ(send_request(sim, 0, 1, Command::Rd16, 0x440, 10), Status::Ok);
}

TEST(Backpressure, StallClearsAfterClocking) {
  DeviceConfig dc = small_device();
  dc.xbar_depth = 2;
  Simulator sim = make_simple_sim(dc);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 0), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 64, 1), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 128, 2), Status::Stalled);
  sim.clock();
  sim.clock();  // crossbar forwarded both to vaults
  EXPECT_EQ(send_request(sim, 0, 0, Command::Rd16, 128, 2), Status::Ok);
  const auto responses = test::drain_all(sim);
  EXPECT_EQ(responses.size(), 3u);
}

TEST(Backpressure, VaultQueueFullRaisesXbarStall) {
  // Tiny vault queue + many same-vault requests: the crossbar cannot
  // forward them all and must raise crossbar request stalls.
  DeviceConfig dc = small_device();
  dc.vault_depth = 2;
  dc.bank_busy_cycles = 50;  // keep the vault from draining
  Simulator sim = make_simple_sim(dc);
  // All to the same vault AND same bank.
  for (Tag t = 0; t < 8; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, t), Status::Ok);
  }
  for (int i = 0; i < 6; ++i) sim.clock();
  EXPECT_GT(sim.stats(0).xbar_rqst_stalls, 0u);
  // Everything still completes eventually.
  const auto responses = test::drain_all(sim, 2000);
  EXPECT_EQ(responses.size(), 8u);
}

TEST(Backpressure, BlockedVaultDoesNotBlockOtherVaults) {
  // Weak ordering: packets to other vaults may pass one stalled at a full
  // vault queue.
  DeviceConfig dc = small_device();
  dc.vault_depth = 1;
  dc.bank_busy_cycles = 60;
  Simulator sim = make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();
  // Addresses for vault 0 (several, to clog it) and vault 1.
  PhysAddr v0 = 0, v1 = 0;
  for (PhysAddr a = 0; a < (1 << 16); a += 16) {
    if (map.vault_of(a) == 1) {
      v1 = a;
      break;
    }
  }
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, v0, 0), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, v0, 1), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, v0, 2), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, v1, 3), Status::Ok);
  // The vault-1 read (queued last!) completes while vault 0 is clogged.
  auto first = await_response(sim, 0, 0, 50);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 0u);  // first v0 read retires normally
  auto second = await_response(sim, 0, 0, 50);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 3u);  // v1 passed the two stalled v0 reads
  const auto rest = test::drain_all(sim, 2000);
  EXPECT_EQ(rest.size(), 2u);
}

TEST(Backpressure, ResponseQueuePressureThrottlesVault) {
  // If the host never drains, response queues fill all the way back to the
  // vault; retirement must pause rather than drop responses.
  DeviceConfig dc = small_device();
  dc.xbar_depth = 2;
  dc.vault_depth = 2;
  dc.bank_busy_cycles = 1;
  Simulator sim = make_simple_sim(dc);

  u64 sent = 0;
  for (Tag t = 0; t < 12; ++t) {
    if (ok(send_request(sim, 0, 0, Command::Rd16, 64 * (t % 4), t))) ++sent;
    sim.clock();
  }
  for (int i = 0; i < 50; ++i) sim.clock();  // no recv: back up completely
  EXPECT_GT(sim.stats(0).vault_rsp_stalls + sim.stats(0).xbar_rsp_stalls, 0u);

  // Nothing was lost: once the host drains, every request answers.
  const auto responses = test::drain_all(sim, 2000);
  EXPECT_EQ(responses.size(), sent);
}

TEST(Backpressure, QueueStatsHighWaterReflectsPressure) {
  DeviceConfig dc = small_device();
  dc.xbar_depth = 8;
  Simulator sim = make_simple_sim(dc);
  for (Tag t = 0; t < 8; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 64 * t, t), Status::Ok);
  }
  EXPECT_EQ(sim.device(0).links[0].rqst.stats().high_water, 8u);
  (void)test::drain_all(sim);
}

TEST(Backpressure, ManyOutstandingAllComplete) {
  // Saturation smoke test on the small config: 200 requests across all
  // links with interleaved draining.
  Simulator sim = make_simple_sim();
  u64 sent = 0, completed = 0;
  Tag tag = 0;
  PacketBuffer pkt;
  while (completed < 200) {
    while (sent < 200) {
      const Status s = send_request(sim, 0, static_cast<u32>(sent % 4),
                                    Command::Rd16,
                                    (sent * 64) % (1 << 20),
                                    tag = static_cast<Tag>(sent % 512));
      if (s == Status::Stalled) break;
      ASSERT_EQ(s, Status::Ok);
      ++sent;
    }
    for (u32 l = 0; l < 4; ++l) {
      while (ok(sim.recv(0, l, pkt))) ++completed;
    }
    sim.clock();
    ASSERT_LT(sim.now(), 5000u) << "deadlock: " << completed << "/200";
  }
  EXPECT_EQ(completed, 200u);
}

}  // namespace
}  // namespace hmcsim
