// Remaining timing-model knobs: vault drain limits, conflict windows, and
// non-local penalty scaling.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(VaultDrainLimit, OneRetirementPerCyclePerVault) {
  DeviceConfig dc = small_device();
  dc.vault_drain_limit = 1;
  dc.bank_busy_cycles = 1;  // banks never the limiter
  Simulator sim = test::make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();
  // Four requests to four DIFFERENT banks of vault 0: without the limit
  // they'd retire in one cycle; with limit 1 they take four.
  u32 found = 0;
  for (PhysAddr a = 0; a < (1u << 20) && found < 4; a += 16) {
    if (map.vault_of(a) == 0 && map.bank_of(a) == found) {
      ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, a,
                                   static_cast<Tag>(found)),
                Status::Ok);
      ++found;
    }
  }
  ASSERT_EQ(found, 4u);
  for (int i = 0; i < 3; ++i) sim.clock();
  EXPECT_EQ(sim.stats(0).reads, 1u);  // first retirement at cycle 2
  sim.clock();
  EXPECT_EQ(sim.stats(0).reads, 2u);
  sim.clock();
  EXPECT_EQ(sim.stats(0).reads, 3u);
}

TEST(VaultDrainLimit, UnlimitedRetiresAllReadyBanks) {
  DeviceConfig dc = small_device();
  dc.vault_drain_limit = 0;
  dc.bank_busy_cycles = 1;
  Simulator sim = test::make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();
  u32 found = 0;
  for (PhysAddr a = 0; a < (1u << 20) && found < 4; a += 16) {
    if (map.vault_of(a) == 0 && map.bank_of(a) == found) {
      ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, a,
                                   static_cast<Tag>(found)),
                Status::Ok);
      ++found;
    }
  }
  for (int i = 0; i < 3; ++i) sim.clock();
  EXPECT_EQ(sim.stats(0).reads, 4u);  // all four banks served in one pass
}

TEST(VaultDrainLimit, ThroughputScalesWithTheLimit) {
  const auto run_cycles = [](u32 limit) {
    DeviceConfig dc = small_device();
    dc.vault_drain_limit = limit;
    dc.bank_busy_cycles = 1;
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 4000;
    dcfg.max_cycles = 500000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 4000u);
    return r.cycles;
  };
  const Cycle limit1 = run_cycles(1);
  const Cycle limit4 = run_cycles(4);
  EXPECT_GT(limit1, limit4);
}

TEST(ConflictWindow, ZeroMeansFullQueueScan) {
  // With window 0 (scan everything) the recognizer sees conflicts deep in
  // the queue that a 1-slot window misses.
  const auto conflicts = [](u32 window) {
    DeviceConfig dc = small_device();
    dc.conflict_window = window;
    dc.vault_depth = 16;
    dc.bank_busy_cycles = 100;  // hold the queue full of conflicts
    Simulator sim = test::make_simple_sim(dc);
    for (Tag t = 0; t < 8; ++t) {
      // Same vault, same bank: maximal conflict chain.
      EXPECT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0, t),
                Status::Ok);
    }
    for (int i = 0; i < 20; ++i) sim.clock();
    return sim.stats(0).bank_conflicts;
  };
  const u64 narrow = conflicts(1);
  const u64 full = conflicts(0);
  EXPECT_GT(full, narrow);
}

TEST(NonLocalPenalty, ScalesWithConfiguredCycles) {
  const auto remote_latency = [](u32 penalty) {
    DeviceConfig dc = small_device();
    dc.nonlocal_penalty_cycles = penalty;
    Simulator sim = test::make_simple_sim(dc);
    const AddressMap& map = sim.device(0).address_map();
    PhysAddr remote = 0;
    for (PhysAddr a = 0; a < (1u << 20); a += 16) {
      if (map.vault_of(a) == 12) {  // quad 3, injected on link 0
        remote = a;
        break;
      }
    }
    const Cycle start = sim.now();
    EXPECT_EQ(test::send_request(sim, 0, 0, Command::Rd16, remote, 1),
              Status::Ok);
    EXPECT_TRUE(test::await_response(sim, 0, 0, 200).has_value());
    return sim.now() - start;
  };
  const Cycle p1 = remote_latency(1);
  const Cycle p8 = remote_latency(8);
  EXPECT_EQ(p8 - p1, 7u);  // exactly the configured difference
}

}  // namespace
}  // namespace hmcsim
