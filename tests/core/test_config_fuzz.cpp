// Robustness fuzzing for the configuration-file parser, mirroring
// tests/packet/test_fuzz.cpp: arbitrary text soup, truncations, and
// single-character mutations of valid files must never crash
// parse_config_string — only a clean accept (with a validated config) or a
// clean reject (with a line-numbered diagnostic).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/random.hpp"
#include "core/config_file.hpp"

namespace hmcsim {
namespace {

/// Characters a config file can plausibly contain, plus hostile extras.
const std::string kAlphabet =
    "abcdefghijklmnopqrstuvwxyz_0123456789 =#.\t-+xGgMmKk\n\"\\";

std::string random_text(SplitMix64& rng, usize max_len) {
  std::string text;
  const usize len = rng.next_below(max_len);
  for (usize i = 0; i < len; ++i) {
    text += kAlphabet[rng.next_below(kAlphabet.size())];
  }
  return text;
}

void expect_clean_outcome(const std::string& text) {
  const ConfigParseResult r = parse_config_string(text);
  if (r.ok) {
    // An accepted config must have passed full validation: re-serializing
    // and re-parsing it must succeed and converge.
    std::ostringstream os;
    write_config(os, r.config);
    const ConfigParseResult round = parse_config_string(os.str());
    EXPECT_TRUE(round.ok) << "accepted config failed to round-trip: "
                          << round.error;
  } else {
    EXPECT_FALSE(r.error.empty()) << "rejection without a diagnostic";
  }
}

TEST(ConfigFuzz, RandomTextNeverCrashesTheParser) {
  SplitMix64 rng(0xC0FF);
  for (int i = 0; i < 20000; ++i) {
    expect_clean_outcome(random_text(rng, 200));
  }
}

TEST(ConfigFuzz, RandomKeyValueShapedLinesNeverCrash) {
  // Bias the soup toward things that look like real assignments so the
  // value-parsing and range-checking paths get hit, not just key lookup.
  SplitMix64 rng(0xFACE);
  static constexpr const char* kKeys[] = {
      "num_devices",   "num_links",       "banks_per_vault",
      "xbar_depth",    "vault_depth",     "capacity_gb",
      "map_mode",      "vault_schedule",  "link_error_rate_ppm",
      "sim_threads",   "dram_sbe_rate_ppm", "watchdog_cycles",
      "link_protocol", "link_tokens",     "link_retry_buffer_flits",
      "link_retry_latency", "link_error_burst_len",
      "link_stuck_interval_cycles", "link_stuck_window_cycles",
      "link_fail_threshold",
      "timing_backend", "vault_backend", "ddr_tcl", "ddr_tras",
      "pcm_read_cycles", "pcm_write_cycles", "pcm_write_gap_cycles",
      "not_a_real_key"};
  for (int i = 0; i < 20000; ++i) {
    std::string text;
    const usize lines = 1 + rng.next_below(6);
    for (usize l = 0; l < lines; ++l) {
      text += kKeys[rng.next_below(std::size(kKeys))];
      text += " = ";
      // Values: plain numbers, huge numbers, negatives, junk words, plus
      // vault_backend's "<index>:<name>" / "<lo>-<hi>:<name>" shapes (well
      // formed, out of range, and malformed).
      switch (rng.next_below(9)) {
        case 0: text += std::to_string(rng.next_below(1u << 20)); break;
        case 1: text += "99999999999999999999999"; break;
        case 2: text += "-5"; break;
        case 3: text += random_text(rng, 12); break;
        case 4: text += "pcm_like"; break;
        case 5:
          text += std::to_string(rng.next_below(80)) + ":generic_ddr";
          break;
        case 6: text += "0-63:pcm_like"; break;
        case 7: text += ":" + random_text(rng, 8); break;
        default: text += "bank_ready"; break;
      }
      text += '\n';
    }
    expect_clean_outcome(text);
  }
}

TEST(ConfigFuzz, MutatedValidFilesNeverMisparse) {
  // Serialize a real config, then mutate one character at a time with the
  // same alphabet the packet fuzzer uses: every parse must end cleanly,
  // and accepts must still satisfy validation invariants.
  SimConfig sc;
  sc.device.num_links = 8;
  sc.device.sim_threads = 4;
  sc.device.dram_sbe_rate_ppm = 100;
  // Non-default backend state so the timing_backend / vault_backend /
  // ddr_* / pcm_* lines exist in the serialized base and get mutated too.
  sc.device.timing_backend = TimingBackend::GenericDdr;
  sc.device.vault_backends = {{2, TimingBackend::PcmLike}};
  sc.device.pcm_write_gap_cycles = 12;
  std::ostringstream os;
  write_config(os, sc);
  const std::string base = std::move(os).str();
  ASSERT_TRUE(parse_config_string(base).ok);

  for (usize pos = 0; pos < base.size(); ++pos) {
    for (const char c : {'0', 'x', '=', ' ', 'Z', '-'}) {
      std::string mutated = base;
      mutated[pos] = c;
      expect_clean_outcome(mutated);
    }
  }
}

TEST(ConfigFuzz, TruncationsOfValidFilesNeverCrash) {
  SimConfig sc;
  sc.device.num_links = 4;
  std::ostringstream os;
  write_config(os, sc);
  const std::string base = std::move(os).str();
  for (usize len = 0; len <= base.size(); ++len) {
    expect_clean_outcome(base.substr(0, len));
  }
}

}  // namespace
}  // namespace hmcsim
