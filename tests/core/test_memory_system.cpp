// The gem5-style MemorySystem facade: transaction splitting, callbacks,
// data integrity, and error propagation.
#include "core/memory_system.hpp"

#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(MemorySystem, SingleBlockWriteReadRoundTrip) {
  MemorySystem mem(small_device());
  const std::vector<u64> data = {0x1111, 0x2222};
  bool write_done = false;
  ASSERT_NE(mem.write(0x1000, 16, data,
                      [&](const MemTransaction& t) {
                        EXPECT_FALSE(t.failed);
                        EXPECT_TRUE(t.is_write);
                        write_done = true;
                      }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(write_done);

  bool read_done = false;
  ASSERT_NE(mem.read(0x1000, 16,
                     [&](const MemTransaction& t) {
                       EXPECT_FALSE(t.failed);
                       ASSERT_EQ(t.data.size(), 2u);
                       EXPECT_EQ(t.data[0], 0x1111u);
                       EXPECT_EQ(t.data[1], 0x2222u);
                       read_done = true;
                     }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(read_done);
}

TEST(MemorySystem, LargeTransactionSplitsAndReassembles) {
  // 1 KiB write + read = 8 fragments of 128 bytes each way.
  MemorySystem mem(small_device());
  std::vector<u64> data(128);
  for (usize i = 0; i < data.size(); ++i) data[i] = 0xF000 + i;

  bool done = false;
  ASSERT_NE(mem.write(0x20000, 1024, data,
                      [&](const MemTransaction& t) {
                        EXPECT_FALSE(t.failed);
                        done = true;
                      }),
            0u);
  ASSERT_TRUE(mem.drain());
  ASSERT_TRUE(done);

  done = false;
  ASSERT_NE(mem.read(0x20000, 1024,
                     [&](const MemTransaction& t) {
                       EXPECT_FALSE(t.failed);
                       ASSERT_EQ(t.data.size(), 128u);
                       for (usize i = 0; i < 128; ++i) {
                         EXPECT_EQ(t.data[i], 0xF000 + i) << i;
                       }
                       done = true;
                     }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(done);
}

TEST(MemorySystem, OddSizeUsesMixedCommands) {
  // 176 bytes = 128 + 48: two fragments with different commands.
  MemorySystem mem(small_device());
  std::vector<u64> data(22, 0xAB);
  bool done = false;
  ASSERT_NE(mem.write(0x3000, 176, data,
                      [&](const MemTransaction& t) {
                        done = !t.failed;
                      }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(done);
  // Verify via direct storage access.
  u64 word = 0;
  ASSERT_TRUE(
      mem.simulator().device(0).store.read_words(0x3000 + 168, {&word, 1}));
  EXPECT_EQ(word, 0xABu);
}

TEST(MemorySystem, RejectsInvalidGeometry) {
  MemorySystem mem(small_device());
  EXPECT_EQ(mem.read(0x1001, 16, nullptr), 0u);   // misaligned address
  EXPECT_EQ(mem.read(0x1000, 8, nullptr), 0u);    // sub-block size
  EXPECT_EQ(mem.read(0x1000, 0, nullptr), 0u);    // empty
  EXPECT_EQ(mem.read((u64{1} << 34) - 16, 32, nullptr), 0u);  // past 2^34
  std::vector<u64> two(2);
  EXPECT_EQ(mem.write(0x1000, 32, two, nullptr), 0u);  // data size mismatch
  EXPECT_EQ(mem.pending_transactions(), 0u);
}

TEST(MemorySystem, OutOfCapacityAddressFailsTheTransaction) {
  // 2 GB device: an address within the 34-bit space but beyond capacity
  // produces an in-band error response, surfaced as failed=true.
  MemorySystem mem(small_device());
  bool failed = false;
  ASSERT_NE(mem.read(u64{3} << 30, 64,
                     [&](const MemTransaction& t) { failed = t.failed; }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(failed);
}

TEST(MemorySystem, ManyConcurrentTransactions) {
  MemorySystem mem(small_device());
  int completed = 0;
  for (u64 i = 0; i < 64; ++i) {
    std::vector<u64> data(8, i);
    ASSERT_NE(mem.write(0x10000 + i * 64, 64, data,
                        [&](const MemTransaction& t) {
                          EXPECT_FALSE(t.failed);
                          ++completed;
                        }),
              0u);
  }
  EXPECT_EQ(mem.pending_transactions(), 64u);
  ASSERT_TRUE(mem.drain());
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(mem.pending_transactions(), 0u);
}

TEST(MemorySystem, LatencyFieldsAreConsistent) {
  MemorySystem mem(small_device());
  Cycle issued = 0, completed = 0;
  (void)mem.read(0x40, 64, [&](const MemTransaction& t) {
    issued = t.issued_at;
    completed = t.completed_at;
  });
  ASSERT_TRUE(mem.drain());
  EXPECT_GE(completed - issued, 4u);  // pipeline floor
  EXPECT_LE(completed, mem.now());
}

TEST(MemorySystem, BackpressureNeverDropsTransactions) {
  // Saturate a tiny device far beyond its queue capacity.
  DeviceConfig dc = small_device();
  dc.xbar_depth = 2;
  dc.vault_depth = 1;
  MemorySystem mem(dc);
  int completed = 0;
  for (u64 i = 0; i < 300; ++i) {
    ASSERT_NE(mem.read((i * 64) % (1 << 20), 64,
                       [&](const MemTransaction& t) {
                         EXPECT_FALSE(t.failed);
                         ++completed;
                       }),
              0u);
  }
  ASSERT_TRUE(mem.drain(200000));
  EXPECT_EQ(completed, 300);
}

TEST(MemorySystem, WrapsExternallyConfiguredSimulator) {
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(2, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  MemorySystem::Options opts;
  opts.target_cub = 1;  // talk to the chained child cube
  MemorySystem mem(sim, opts);
  std::vector<u64> data = {0x5A5A, 0};
  bool done = false;
  ASSERT_NE(mem.write(0x9000, 16, data,
                      [&](const MemTransaction& t) { done = !t.failed; }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(done);
  u64 word = 0;
  ASSERT_TRUE(sim.device(1).store.read_words(0x9000, {&word, 1}));
  EXPECT_EQ(word, 0x5A5Au);
}

TEST(MemorySystem, AtomicAddCompletesAndApplies) {
  MemorySystem mem(small_device());
  const u64 seed[2] = {100, 200};
  ASSERT_NE(mem.write(0x500, 16, seed, nullptr), 0u);
  ASSERT_TRUE(mem.drain());

  bool done = false;
  const u64 operand[2] = {5, 7};
  ASSERT_NE(mem.atomic(0x500, Command::TwoAdd8, std::span<const u64, 2>(operand),
                       [&](const MemTransaction& t) {
                         EXPECT_FALSE(t.failed);
                         EXPECT_TRUE(t.is_write);
                         done = true;
                       }),
            0u);
  ASSERT_TRUE(mem.drain());
  EXPECT_TRUE(done);
  u64 words[2];
  ASSERT_TRUE(mem.simulator().device(0).store.read_words(0x500, words));
  EXPECT_EQ(words[0], 105u);
  EXPECT_EQ(words[1], 207u);
  EXPECT_EQ(mem.simulator().total_stats().atomics, 1u);
}

TEST(MemorySystem, PostedAtomicFiresAndForgets) {
  MemorySystem mem(small_device());
  int completions = 0;
  const u64 operand[2] = {1, 1};
  for (int i = 0; i < 32; ++i) {
    ASSERT_NE(mem.atomic(0x600, Command::PostedTwoAdd8,
                         std::span<const u64, 2>(operand),
                         [&](const MemTransaction& t) {
                           EXPECT_FALSE(t.failed);
                           ++completions;
                         }),
              0u);
  }
  ASSERT_TRUE(mem.drain());
  EXPECT_EQ(completions, 32);  // completed at injection
  EXPECT_EQ(mem.pending_transactions(), 0u);
  u64 word = 0;
  ASSERT_TRUE(mem.simulator().device(0).store.read_words(0x600, {&word, 1}));
  EXPECT_EQ(word, 32u);  // ordered same-bank stream: all adds landed
}

TEST(MemorySystem, AtomicValidation) {
  MemorySystem mem(small_device());
  const u64 operand[2] = {1, 1};
  // Non-atomic command rejected.
  EXPECT_EQ(mem.atomic(0x0, Command::Rd16, std::span<const u64, 2>(operand),
                       nullptr),
            0u);
  // Misaligned address rejected.
  EXPECT_EQ(mem.atomic(0x8, Command::Add16, std::span<const u64, 2>(operand),
                       nullptr),
            0u);
}

TEST(MemorySystem, TransactionIdsAreUniqueAndMonotonic) {
  MemorySystem mem(small_device());
  const u64 a = mem.read(0x0, 16, nullptr);
  const u64 b = mem.read(0x40, 16, nullptr);
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);
  ASSERT_TRUE(mem.drain());
}

}  // namespace
}  // namespace hmcsim
