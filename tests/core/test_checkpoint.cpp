// Checkpoint/restore: a restored simulator must continue cycle-for-cycle
// identically, including every in-flight packet, register, bank timer and
// memory byte.
#include <gtest/gtest.h>

#include <sstream>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::send_request;
using test::small_device;

TEST(Checkpoint, RoundTripOfQuiescentSimulator) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x40, 1, 0, {0x42, 0}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Gc), 0x99), Status::Ok);

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);

  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  EXPECT_EQ(restored.now(), sim.now());
  EXPECT_EQ(restored.num_devices(), 1u);
  EXPECT_TRUE(restored.quiescent());
  EXPECT_EQ(restored.stats(0).writes, 1u);

  u64 word = 0;
  ASSERT_TRUE(restored.device(0).store.read_words(0x40, {&word, 1}));
  EXPECT_EQ(word, 0x42u);
  u64 gc = 0;
  ASSERT_EQ(restored.jtag_reg_read(0, phys_from_reg(Reg::Gc), gc),
            Status::Ok);
  EXPECT_EQ(gc, 0x99u);
}

TEST(Checkpoint, MidFlightStateContinuesIdentically) {
  // Inject a burst, clock partway so packets sit in crossbar queues, vault
  // queues and response queues simultaneously, checkpoint, then compare
  // the original and the restored copies response-for-response.
  DeviceConfig dc = small_device();
  dc.bank_busy_cycles = 6;
  Simulator original = test::make_simple_sim(dc);
  for (Tag t = 0; t < 24; ++t) {
    const Command cmd = (t % 2 == 0) ? Command::Rd32 : Command::Wr32;
    ASSERT_NE(send_request(original, 0, t % 4, cmd, 64 * t, t, 0,
                           std::vector<u64>(request_data_bytes(cmd) / 8,
                                            t)),
              Status::InvalidArgument);
  }
  for (int i = 0; i < 3; ++i) original.clock();
  ASSERT_FALSE(original.quiescent());  // genuinely mid-flight

  std::stringstream stream;
  ASSERT_EQ(original.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  EXPECT_EQ(restored.now(), original.now());
  EXPECT_FALSE(restored.quiescent());

  // Drain both in lockstep and require bit-identical response packets.
  PacketBuffer a, b;
  for (int cycle = 0; cycle < 300; ++cycle) {
    for (u32 l = 0; l < 4; ++l) {
      for (;;) {
        const Status sa = original.recv(0, l, a);
        const Status sb = restored.recv(0, l, b);
        ASSERT_EQ(sa, sb) << "cycle " << cycle << " link " << l;
        if (!ok(sa)) break;
        ASSERT_EQ(a, b) << "cycle " << cycle << " link " << l;
      }
    }
    original.clock();
    restored.clock();
    if (original.quiescent() && restored.quiescent()) break;
  }
  EXPECT_TRUE(original.quiescent());
  EXPECT_TRUE(restored.quiescent());
  EXPECT_EQ(original.stats(0).reads, restored.stats(0).reads);
  EXPECT_EQ(original.stats(0).writes, restored.stats(0).writes);
  EXPECT_EQ(original.stats(0).responses, restored.stats(0).responses);
  EXPECT_EQ(original.stats(0).bank_conflicts,
            restored.stats(0).bank_conflicts);
}

TEST(Checkpoint, MultiDeviceTopologySurvives) {
  SimConfig sc;
  sc.num_devices = 3;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(3, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  // Put a request in flight toward the deepest cube, then checkpoint.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x80, 7, /*cub=*/2),
            Status::Ok);
  sim.clock();
  sim.clock();

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  EXPECT_EQ(restored.num_devices(), 3u);
  EXPECT_TRUE(restored.topology().is_root(CubeId{0}));
  EXPECT_FALSE(restored.topology().is_root(CubeId{2}));
  EXPECT_EQ(restored.topology().hops(CubeId{0}, CubeId{2}), 2u);

  const auto rsp = test::await_response(restored, 0, 0, 500);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->tag, 7u);
  EXPECT_EQ(rsp->cub, 2u);
}

TEST(Checkpoint, RestoredStateIsByteIdenticalUnderLockstep) {
  // The strongest determinism statement: save A, restore into B, drive
  // both with identical input for N cycles, save both — the two checkpoint
  // streams must be byte-for-byte identical.
  DeviceConfig dc = small_device();
  dc.bank_busy_cycles = 5;
  Simulator a = test::make_simple_sim(dc);
  for (Tag t = 0; t < 16; ++t) {
    ASSERT_NE(send_request(a, 0, t % 4, Command::Rd32, 64 * t, t),
              Status::InvalidArgument);
  }
  for (int i = 0; i < 2; ++i) a.clock();

  std::stringstream snap;
  ASSERT_EQ(a.save_checkpoint(snap), Status::Ok);
  Simulator b;
  ASSERT_EQ(b.restore_checkpoint(snap), Status::Ok);

  SplitMix64 rng(99);
  PacketBuffer pkt, out_a, out_b;
  for (int cycle = 0; cycle < 60; ++cycle) {
    // Identical stimulus to both.
    if (cycle % 3 == 0) {
      const PhysAddr addr = rng.next_below(1u << 20) * 16;
      const Tag tag = static_cast<Tag>(100 + cycle);
      ASSERT_EQ(build_memrequest(0, addr, tag, Command::Wr16, 1,
                                 std::vector<u64>{cycle, 0}, pkt),
                Status::Ok);
      const Status sa = a.send(0, 1, pkt);
      const Status sb = b.send(0, 1, pkt);
      ASSERT_EQ(sa, sb);
    }
    for (u32 l = 0; l < 4; ++l) {
      for (;;) {
        const Status ra = a.recv(0, l, out_a);
        const Status rb = b.recv(0, l, out_b);
        ASSERT_EQ(ra, rb);
        if (!ok(ra)) break;
        ASSERT_EQ(out_a, out_b);
      }
    }
    a.clock();
    b.clock();
  }

  std::stringstream end_a, end_b;
  ASSERT_EQ(a.save_checkpoint(end_a), Status::Ok);
  ASSERT_EQ(b.save_checkpoint(end_b), Status::Ok);
  EXPECT_EQ(end_a.str(), end_b.str());
}

TEST(Checkpoint, RejectsCorruptStreams) {
  Simulator sim = test::make_simple_sim();
  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);

  // Corrupt magic.
  std::string bytes = stream.str();
  bytes[0] = 'X';
  std::istringstream bad_magic(bytes);
  Simulator r1;
  EXPECT_EQ(r1.restore_checkpoint(bad_magic), Status::MalformedPacket);

  // Truncated stream.
  std::istringstream truncated(stream.str().substr(0, 40));
  Simulator r2;
  EXPECT_NE(r2.restore_checkpoint(truncated), Status::Ok);

  // Empty stream.
  std::istringstream empty("");
  Simulator r3;
  EXPECT_EQ(r3.restore_checkpoint(empty), Status::MalformedPacket);
}

TEST(Checkpoint, SaveRequiresInitializedSimulator) {
  Simulator sim;
  std::stringstream stream;
  EXPECT_EQ(sim.save_checkpoint(stream), Status::InvalidArgument);
}

TEST(Checkpoint, RestoredSimulatorAcceptsNewTraffic) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x100, 1, 0, {5, 6}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);

  // Read back pre-checkpoint data through the full packet path.
  ASSERT_EQ(send_request(restored, 0, 1, Command::Rd16, 0x100, 2),
            Status::Ok);
  PacketBuffer raw;
  const auto rsp = test::await_response(restored, 0, 1, 200, &raw);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(raw.payload()[0], 5u);
  EXPECT_EQ(raw.payload()[1], 6u);
}

TEST(Checkpoint, DriverWorkloadSplitAcrossCheckpoint) {
  // End-to-end: half a workload, checkpoint+restore, half a workload; the
  // restored device's total counters equal an uninterrupted run's.
  DeviceConfig dc = small_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  {
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 500;
    HostDriver driver(sim, gen, dcfg);
    ASSERT_EQ(driver.run().completed, 500u);
  }
  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  {
    GeneratorConfig gc2 = gc;
    gc2.seed = 2;
    RandomAccessGenerator gen(gc2);
    DriverConfig dcfg;
    dcfg.total_requests = 500;
    HostDriver driver(restored, gen, dcfg);
    ASSERT_EQ(driver.run().completed, 500u);
  }
  EXPECT_EQ(restored.total_stats().retired(), 1000u);
}

}  // namespace
}  // namespace hmcsim
