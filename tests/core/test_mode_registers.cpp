// In-band (MODE_READ / MODE_WRITE) and side-band (JTAG) register access
// paths, and their interaction with the clock domains (paper §V.D).
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;
using test::small_device;

std::optional<u64> mode_read(Simulator& sim, u32 dev_link, u32 cub,
                             u32 phys_reg) {
  PacketBuffer pkt;
  EXPECT_EQ(build_moderequest(cub, phys_reg, 1, /*write=*/false, 0, dev_link,
                              pkt),
            Status::Ok);
  EXPECT_EQ(sim.send(0, dev_link, pkt), Status::Ok);
  PacketBuffer raw;
  auto rsp = await_response(sim, 0, dev_link, 500, &raw);
  if (!rsp || rsp->cmd != Command::ModeReadResponse) return std::nullopt;
  return raw.payload()[0];
}

Status mode_write(Simulator& sim, u32 dev_link, u32 cub, u32 phys_reg,
                  u64 value) {
  PacketBuffer pkt;
  EXPECT_EQ(build_moderequest(cub, phys_reg, 2, /*write=*/true, value,
                              dev_link, pkt),
            Status::Ok);
  EXPECT_EQ(sim.send(0, dev_link, pkt), Status::Ok);
  auto rsp = await_response(sim, 0, dev_link, 500);
  if (!rsp) return Status::Internal;
  return rsp->cmd == Command::ModeWriteResponse ? Status::Ok
                                                : Status::NoSuchRegister;
}

TEST(ModeRegisters, InBandReadReturnsRegisterValue) {
  Simulator sim = make_simple_sim();
  const auto rvid = mode_read(sim, 0, 0, phys_from_reg(Reg::Rvid));
  ASSERT_TRUE(rvid.has_value());
  u64 jtag_value = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Rvid), jtag_value),
            Status::Ok);
  EXPECT_EQ(*rvid, jtag_value);
}

TEST(ModeRegisters, InBandWriteVisibleToJtag) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(mode_write(sim, 0, 0, phys_from_reg(Reg::Gc), 0x1234), Status::Ok);
  u64 v = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Gc), v), Status::Ok);
  EXPECT_EQ(v, 0x1234u);
}

TEST(ModeRegisters, JtagWriteVisibleToInBandRead) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Ac), 0x77), Status::Ok);
  const auto v = mode_read(sim, 0, 0, phys_from_reg(Reg::Ac));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0x77u);
}

TEST(ModeRegisters, JtagIsOutsideClockDomains) {
  // JTAG reads/writes work without a single clock() call (paper: "this
  // interface exists external to the normal HMC-Sim notion of clock
  // domains").
  Simulator sim = make_simple_sim();
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Gc), 5), Status::Ok);
  u64 v = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Gc), v), Status::Ok);
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(ModeRegisters, InBandRequiresClocking) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_moderequest(0, phys_from_reg(Reg::Gc), 1, false, 0, 0, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  PacketBuffer out;
  EXPECT_EQ(sim.recv(0, 0, out), Status::NoResponse);  // no clock yet
}

TEST(ModeRegisters, JtagRejectsReadOnlyWrites) {
  Simulator sim = make_simple_sim();
  EXPECT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Feat), 1),
            Status::ReadOnlyRegister);
  EXPECT_EQ(sim.jtag_reg_write(0, 0xABCDEF, 1), Status::NoSuchRegister);
  EXPECT_EQ(sim.jtag_reg_write(3, phys_from_reg(Reg::Gc), 1),
            Status::InvalidArgument);  // no device 3
}

TEST(ModeRegisters, RwsSelfClearsAfterInBandWrite) {
  Simulator sim = make_simple_sim();
  // The in-band write lands during a clocked stage; by the time its
  // response reaches the host, at least one stage-6 edge has passed, so the
  // RWS register reads back zero.
  ASSERT_EQ(mode_write(sim, 0, 0, phys_from_reg(Reg::Edr1), 0xFF),
            Status::Ok);
  u64 v = 1;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Edr1), v), Status::Ok);
  EXPECT_EQ(v, 0u);
}

TEST(ModeRegisters, ModeRequestsToChainedDevices) {
  // MODE packets route to the destination cube like any other packet type
  // (paper §V.D: "these packet types will route to the destination cube ID
  // as would any other packet type").
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(2, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  // Distinguish the two devices through their GC registers.
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Gc), 0xA0), Status::Ok);
  ASSERT_EQ(sim.jtag_reg_write(1, phys_from_reg(Reg::Gc), 0xA1), Status::Ok);

  const auto v0 = mode_read(sim, 0, /*cub=*/0, phys_from_reg(Reg::Gc));
  const auto v1 = mode_read(sim, 0, /*cub=*/1, phys_from_reg(Reg::Gc));
  ASSERT_TRUE(v0.has_value());
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v0, 0xA0u);
  EXPECT_EQ(*v1, 0xA1u);
  EXPECT_EQ(sim.stats(1).mode_ops, 1u);
}

TEST(ModeRegisters, ModeOpsDoNotTouchVaultsOrBanks) {
  Simulator sim = make_simple_sim();
  ASSERT_TRUE(mode_read(sim, 0, 0, phys_from_reg(Reg::Rvid)).has_value());
  EXPECT_EQ(sim.stats(0).reads, 0u);
  EXPECT_EQ(sim.stats(0).writes, 0u);
  EXPECT_EQ(sim.stats(0).mode_ops, 1u);
  for (const auto& vault : sim.device(0).vaults) {
    EXPECT_EQ(vault.rqst.stats().total_pushes, 0u);
  }
}

TEST(ModeRegisters, PerLinkRegistersMatchLinkCount) {
  DeviceConfig dc = small_device();
  dc.num_links = 8;
  Simulator sim = make_simple_sim(dc);
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Lc7), 9), Status::Ok);

  Simulator sim4 = make_simple_sim();  // 4-link part
  EXPECT_EQ(sim4.jtag_reg_write(0, phys_from_reg(Reg::Lc7), 9),
            Status::NoSuchRegister);
}

}  // namespace
}  // namespace hmcsim
