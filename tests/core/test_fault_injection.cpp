// Injected link-error model ("error simulation", paper §IV requirement 5):
// packets probabilistically die crossing crossbar links and surface as
// in-band CRC_FAILURE error responses — no request is ever silently lost.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(FaultInjection, ZeroRateInjectsNothing) {
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 0;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 32; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t),
              Status::Ok);
  }
  const auto responses = test::drain_all(sim, 2000);
  EXPECT_EQ(responses.size(), 32u);
  for (const auto& r : responses) EXPECT_NE(r.cmd, Command::Error);
  EXPECT_EQ(sim.stats(0).link_errors, 0u);
}

TEST(FaultInjection, FullRateKillsEveryPacket) {
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 1'000'000;  // certain death
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 16; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t),
              Status::Ok);
  }
  const auto responses = test::drain_all(sim, 2000);
  ASSERT_EQ(responses.size(), 16u);  // every request still answers
  for (const auto& r : responses) {
    EXPECT_EQ(r.cmd, Command::Error);
    EXPECT_EQ(r.errstat, ErrStat::CrcFailure);
  }
  EXPECT_EQ(sim.stats(0).link_errors, 16u);
  EXPECT_EQ(sim.stats(0).reads, 0u);  // nothing reached a bank
}

TEST(FaultInjection, PartialRateConservesRequests) {
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 100'000;  // ~10%
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 3000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();

  // Every request completes: either with data or with an error response.
  EXPECT_EQ(r.completed, 3000u);
  EXPECT_FALSE(r.hit_cycle_cap);
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(r.errors, s.link_errors);
  EXPECT_EQ(s.retired() + s.link_errors, 3000u);
  // The observed rate is in the right ballpark (binomial 3-sigma ~ 1.6%).
  EXPECT_NEAR(static_cast<double>(r.errors) / 3000.0, 0.10, 0.025);
}

TEST(FaultInjection, DeterministicPerSeed) {
  const auto run_errors = [](u64 seed) {
    DeviceConfig dc = small_device();
    dc.link_error_rate_ppm = 50'000;
    dc.fault_seed = seed;
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 1000;
    dcfg.max_cycles = 200000;
    HostDriver driver(sim, gen, dcfg);
    return driver.run().errors;
  };
  EXPECT_EQ(run_errors(1), run_errors(1));
  // Different seeds should (overwhelmingly) fault different packets.
  EXPECT_NE(run_errors(1), run_errors(0xABCDEF));
}

TEST(LinkRetry, RetryBudgetAbsorbsTransientErrors) {
  // ~30% error rate with a healthy retry budget: every request should
  // survive (P(4 consecutive corruptions) ~ 0.8%, and the budget renews
  // per link crossing).
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 300'000;
  dc.link_retry_limit = 8;
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);  // all errors absorbed by retries
  const DeviceStats s = sim.total_stats();
  EXPECT_GT(s.link_retries, 400u);  // ~30% of 2000 at minimum
  EXPECT_EQ(s.link_errors, 0u);
  EXPECT_EQ(s.retired(), 2000u);
}

TEST(LinkRetry, TransientErrorRecoveredByRetransmission) {
  // Close the retry-success accounting path at single-request granularity:
  // with a 50% corruption rate and a deep budget, a lone request is
  // (deterministically, per fixed seed) corrupted at least once, replayed,
  // and still answers with DATA — link_retries counts the replays while
  // link_errors stays zero.
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 500'000;
  dc.link_retry_limit = 16;
  dc.fault_seed = 3;
  Simulator sim = test::make_simple_sim(dc);
  u32 retried_runs = 0;
  for (Tag t = 0; t < 8; ++t) {
    const u64 before = sim.stats(0).link_retries;
    ASSERT_EQ(test::send_request(sim, 0, t % 4, Command::Rd16, 0x100 * t, t),
              Status::Ok);
    const auto rsp = test::await_response(sim, 0, t % 4, 500);
    ASSERT_TRUE(rsp.has_value());
    EXPECT_NE(rsp->cmd, Command::Error);  // recovered, not failed
    EXPECT_EQ(rsp->tag, t);
    if (sim.stats(0).link_retries > before) ++retried_runs;
  }
  // At 50% corruption, P(zero of 8 requests needing a replay) ~ 0.4%.
  EXPECT_GT(retried_runs, 0u);
  EXPECT_GT(sim.stats(0).link_retries, 0u);
  EXPECT_EQ(sim.stats(0).link_errors, 0u);
  EXPECT_EQ(sim.stats(0).retired(), 8u);
}

TEST(LinkRetry, ExhaustedBudgetStillFails) {
  // Certain corruption with one retry: every packet burns its retry and
  // then dies.
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 1'000'000;
  dc.link_retry_limit = 1;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 8; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t),
              Status::Ok);
  }
  const auto responses = test::drain_all(sim, 2000);
  ASSERT_EQ(responses.size(), 8u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.cmd, Command::Error);
  }
  EXPECT_EQ(sim.stats(0).link_retries, 8u);
  EXPECT_EQ(sim.stats(0).link_errors, 8u);
}

TEST(LinkRetry, RetriesCostCycles) {
  // At equal (survivable) error rates, a run with retries takes longer
  // than an error-free run: replays consume link time.
  const auto run_cycles = [](u32 rate_ppm) {
    DeviceConfig dc = small_device();
    dc.link_error_rate_ppm = rate_ppm;
    dc.link_retry_limit = 16;
    dc.xbar_flits_per_cycle = 2;  // make link time the bottleneck
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 2000;
    dcfg.max_cycles = 500000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 2000u);
    EXPECT_EQ(r.errors, 0u);
    return r.cycles;
  };
  const Cycle clean = run_cycles(0);
  const Cycle noisy = run_cycles(400'000);
  EXPECT_GT(noisy, clean + clean / 4);  // >25% slower under 40% corruption
}

TEST(FaultInjection, ChainedLinksMultiplyExposure) {
  // A request to a deep cube crosses more links, so per-request death
  // probability grows with chain depth.
  const auto error_fraction = [](u32 target_cub) {
    SimConfig sc;
    sc.num_devices = 4;
    DeviceConfig dc = small_device();
    dc.link_error_rate_ppm = 80'000;
    dc.model_data = false;
    sc.device = dc;
    std::string err;
    Topology topo = make_chain(4, 4, 2, 1, &err);
    EXPECT_GT(topo.num_devices(), 0u) << err;
    Simulator sim;
    EXPECT_EQ(sim.init(sc, std::move(topo)), Status::Ok);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 2000;
    dcfg.target_cub = target_cub;
    dcfg.max_cycles = 1000000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 2000u);
    return static_cast<double>(r.errors) / 2000.0;
  };
  const double near = error_fraction(0);
  const double far = error_fraction(3);
  EXPECT_GT(far, near * 1.5);
}

}  // namespace
}  // namespace hmcsim
