// Tests pinning the six-stage sub-cycle clock model (paper §IV.C, Figure 3):
// packets advance at most one internal stage per clock, internal state only
// moves on clock(), and the clock value updates in stage 6.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::make_simple_sim;
using test::send_request;
using test::small_device;

TEST(ClockStages, ClockAdvancesByExactlyOne) {
  Simulator sim = make_simple_sim();
  for (Cycle c = 0; c < 10; ++c) {
    EXPECT_EQ(sim.now(), c);
    sim.clock();
  }
}

TEST(ClockStages, NothingMovesWithoutClock) {
  // "Internal device operations will not progress until an appropriate call
  // to the clock function" (§IV.C).
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 1), Status::Ok);
  PacketBuffer pkt;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  }
  EXPECT_EQ(sim.stats(0).reads, 0u);
  EXPECT_FALSE(sim.quiescent());  // the request sits in the crossbar queue
}

TEST(ClockStages, PacketCannotReachBankInOneCycle) {
  // The request must traverse: crossbar queue -> vault queue -> bank, one
  // stage per clock minimum; the response path adds more.  A read response
  // therefore cannot appear before cycle 4.
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 1), Status::Ok);

  sim.clock();  // cycle 0: request becomes visible to crossbar next cycle
  EXPECT_EQ(sim.stats(0).reads, 0u);
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);

  sim.clock();  // cycle 1: crossbar forwards to the vault queue
  EXPECT_EQ(sim.stats(0).reads, 0u);
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);

  sim.clock();  // cycle 2: vault retires the read, response queued
  EXPECT_EQ(sim.stats(0).reads, 1u);
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);

  sim.clock();  // cycle 3: response registered with the crossbar; the
                // host sees it at the leading edge of cycle 4.
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::Ok);
}

TEST(ClockStages, MinimumLatencyIsStable) {
  // The pipeline depth must not depend on *when* the request is injected.
  Simulator sim = make_simple_sim();
  for (int warmup = 0; warmup < 3; ++warmup) sim.clock();
  const Cycle start = sim.now();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 2), Status::Ok);
  auto rsp = test::await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(sim.now() - start, 4u);
}

TEST(ClockStages, NonLocalQuadRequestIsSlower) {
  // A request entering link 0 for a vault in quad 3 pays the routed-latency
  // penalty (paper: "higher latencies are detected due to the physical
  // locality of the queue versus the destination vault").
  DeviceConfig dc = test::small_device();
  dc.nonlocal_penalty_cycles = 3;
  Simulator sim = make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();

  // Find addresses local (vault 0, quad 0) and remote (vault 12, quad 3)
  // relative to link 0.
  PhysAddr local = 0, remote = 0;
  for (PhysAddr a = 0; a < (1 << 16); a += 16) {
    if (map.vault_of(a) == 0) local = a;
    if (map.vault_of(a) == 12) remote = a;
  }
  ASSERT_EQ(map.vault_of(local) / 4, 0u);
  ASSERT_EQ(map.vault_of(remote) / 4, 3u);

  Cycle t0 = sim.now();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, local, 1), Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  const Cycle local_latency = sim.now() - t0;

  t0 = sim.now();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, remote, 2), Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  const Cycle remote_latency = sim.now() - t0;

  EXPECT_GT(remote_latency, local_latency);
  EXPECT_EQ(sim.stats(0).latency_penalties, 1u);
}

TEST(ClockStages, LocalQuadPaysNoPenalty) {
  Simulator sim = make_simple_sim();
  const AddressMap& map = sim.device(0).address_map();
  // Address in vault 4 (quad 1) injected on link 1: co-located.
  PhysAddr addr = 0;
  for (PhysAddr a = 0; a < (1 << 16); a += 16) {
    if (map.vault_of(a) == 4) {
      addr = a;
      break;
    }
  }
  ASSERT_EQ(send_request(sim, 0, 1, Command::Rd16, addr, 1), Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 1).has_value());
  EXPECT_EQ(sim.stats(0).latency_penalties, 0u);
}

TEST(ClockStages, BankBusyDelaysBackToBackSameBank) {
  DeviceConfig dc = small_device();
  dc.bank_busy_cycles = 10;
  Simulator sim = make_simple_sim(dc);

  // Two reads to the same bank (same address): the second must wait out the
  // bank busy window.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 1), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 2), Status::Ok);

  const Cycle start = sim.now();
  auto first = test::await_response(sim, 0, 0);
  ASSERT_TRUE(first.has_value());
  const Cycle first_at = sim.now() - start;
  auto second = test::await_response(sim, 0, 0);
  ASSERT_TRUE(second.has_value());
  const Cycle second_at = sim.now() - start;
  EXPECT_GE(second_at - first_at, 9u);  // ~bank_busy_cycles apart
  EXPECT_GT(sim.stats(0).bank_conflicts, 0u);
}

TEST(ClockStages, DistinctBanksRetireSameCycle) {
  // Two reads to different banks of one vault retire in the same stage-4
  // pass ("processed in equivalent and constant time as long as their bank
  // addressing does not conflict").
  Simulator sim = make_simple_sim();
  const AddressMap& map = sim.device(0).address_map();
  // Same vault, banks 0 and 1.
  PhysAddr bank0 = kNoCoord, bank1 = kNoCoord;
  for (PhysAddr a = 0; a < (1 << 20); a += 16) {
    if (map.vault_of(a) != 0) continue;
    if (map.bank_of(a) == 0 && bank0 == kNoCoord) bank0 = a;
    if (map.bank_of(a) == 1 && bank1 == kNoCoord) bank1 = a;
  }
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, bank0, 1), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, bank1, 2), Status::Ok);
  for (int i = 0; i < 3; ++i) sim.clock();
  EXPECT_EQ(sim.stats(0).reads, 2u);  // both retired by cycle 2
  EXPECT_EQ(sim.stats(0).bank_conflicts, 0u);
}

TEST(ClockStages, RwsRegistersClearAtStageSix) {
  Simulator sim = make_simple_sim();
  // JTAG writes are out-of-band: the RWS value is visible until the next
  // clock edge, then self-clears.
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Edr0), 0x77),
            Status::Ok);
  u64 v = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Edr0), v), Status::Ok);
  EXPECT_EQ(v, 0x77u);
  sim.clock();
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Edr0), v), Status::Ok);
  EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace hmcsim
