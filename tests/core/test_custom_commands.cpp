// Custom Memory Cube (CMC) commands: registration rules, full-pipeline
// execution, posted variants, chaining, and checkpoint interaction.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::small_device;

constexpr u8 kFetchMax8 = 0x04;   // reserved encoding we register
constexpr u8 kPopcnt16 = 0x05;
constexpr u8 kPostedFill = 0x06;

/// FETCH_MAX8: memory[0] = max(memory[0], operand[0]); returns the OLD
/// value in a 2-FLIT RD_RS-style response.
CustomCommandDef fetch_max8() {
  CustomCommandDef def;
  def.name = "FETCH_MAX8";
  def.request_flits = 2;   // 16B operand
  def.response_flits = 2;  // 16B response payload
  def.access_bytes = 16;
  def.handler = [](std::span<u64> memory, std::span<const u64> operand,
                   std::span<u64> response) {
    response[0] = memory[0];
    response[1] = 0;
    memory[0] = std::max(memory[0], operand[0]);
  };
  return def;
}

/// POPCNT16: counts set bits across the 16-byte block; read-only.
CustomCommandDef popcnt16() {
  CustomCommandDef def;
  def.name = "POPCNT16";
  def.request_flits = 1;   // no operand
  def.response_flits = 2;
  def.access_bytes = 16;
  def.handler = [](std::span<u64> memory, std::span<const u64>,
                   std::span<u64> response) {
    response[0] = static_cast<u64>(std::popcount(memory[0]) +
                                   std::popcount(memory[1]));
    response[1] = 0;
  };
  return def;
}

/// Posted 64-byte fill with the operand word.
CustomCommandDef posted_fill64() {
  CustomCommandDef def;
  def.name = "P_FILL64";
  def.request_flits = 2;
  def.response_flits = 0;  // posted
  def.access_bytes = 64;
  def.handler = [](std::span<u64> memory, std::span<const u64> operand,
                   std::span<u64>) {
    for (u64& w : memory) w = operand[0];
  };
  return def;
}

TEST(CustomCommands, ReservedEncodingSpace) {
  EXPECT_TRUE(is_reserved_command(0x04));
  EXPECT_TRUE(is_reserved_command(0x20));
  EXPECT_TRUE(is_reserved_command(0x3f));
  EXPECT_FALSE(is_reserved_command(0x08));  // WR16
  EXPECT_FALSE(is_reserved_command(0x30));  // RD16
  EXPECT_FALSE(is_reserved_command(0x3e));  // ERROR
  EXPECT_FALSE(is_reserved_command(64));
}

TEST(CustomCommands, RegistrationRules) {
  Simulator sim = test::make_simple_sim();
  EXPECT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);
  // Duplicate registration rejected.
  EXPECT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::InvalidConfig);
  // Non-reserved encoding rejected.
  EXPECT_EQ(sim.register_custom_command(0x08, fetch_max8()),
            Status::InvalidArgument);
  // Missing handler rejected.
  CustomCommandDef broken = fetch_max8();
  broken.handler = nullptr;
  EXPECT_EQ(sim.register_custom_command(kPopcnt16, broken),
            Status::InvalidArgument);
  // Bad sizes rejected.
  broken = fetch_max8();
  broken.access_bytes = 12;
  EXPECT_EQ(sim.register_custom_command(kPopcnt16, broken),
            Status::InvalidArgument);
  broken = fetch_max8();
  broken.request_flits = 10;
  EXPECT_EQ(sim.register_custom_command(kPopcnt16, broken),
            Status::InvalidArgument);
}

TEST(CustomCommands, UnregisteredReservedCommandIsRejectedAtSend) {
  Simulator sim = test::make_simple_sim();
  PacketBuffer pkt;
  pkt.flits = 1;
  pkt.words[0] = field::make_request_header(static_cast<Command>(0x07), 1, 1,
                                            0x40, 0);
  pkt.words[1] = field::make_request_tail(0, 0, 0, false, 0, 0);
  seal_crc(pkt);
  EXPECT_EQ(sim.send(0, 0, pkt), Status::MalformedPacket);
}

TEST(CustomCommands, FetchMaxExecutesAtTheBank) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);

  // Seed memory with 100.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x40, 1, 0,
                               {100, 0}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  // FETCH_MAX8 with operand 77: memory stays 100, old value returned.
  PacketBuffer pkt;
  const u64 operand[2] = {77, 0};
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kFetchMax8, 0, 0x40,
                                 2, 0, operand, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  PacketBuffer raw;
  auto rsp = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::ReadResponse);  // 2-FLIT CMC responses
  EXPECT_EQ(rsp->tag, 2u);
  EXPECT_EQ(raw.payload()[0], 100u);  // old value

  // Operand 500 updates memory.
  const u64 bigger[2] = {500, 0};
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kFetchMax8, 0, 0x40,
                                 3, 0, bigger, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(0x40, {&word, 1}));
  EXPECT_EQ(word, 500u);
  EXPECT_EQ(sim.stats(0).custom_ops, 2u);
  EXPECT_EQ(sim.stats(0).atomics, 0u);  // counted separately
}

TEST(CustomCommands, SingleFlitReadStyleCommand) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(sim.register_custom_command(kPopcnt16, popcnt16()), Status::Ok);
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x80, 1, 0,
                               {0xFF, 0xF0F0}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  PacketBuffer pkt;
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kPopcnt16, 0, 0x80,
                                 2, 0, {}, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  PacketBuffer raw;
  auto rsp = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(raw.payload()[0], 16u);  // 8 + 8 set bits
}

TEST(CustomCommands, PostedCommandProducesNoResponse) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(sim.register_custom_command(kPostedFill, posted_fill64()),
            Status::Ok);
  PacketBuffer pkt;
  const u64 operand[2] = {0xABABABABABABABABull, 0};
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kPostedFill, 0,
                                 0x1000, 1, 0, operand, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  for (int i = 0; i < 30; ++i) sim.clock();
  PacketBuffer out;
  EXPECT_EQ(sim.recv(0, 0, out), Status::NoResponse);
  EXPECT_EQ(sim.stats(0).custom_ops, 1u);
  for (u64 off = 0; off < 64; off += 8) {
    u64 word = 0;
    ASSERT_TRUE(sim.device(0).store.read_words(0x1000 + off, {&word, 1}));
    EXPECT_EQ(word, 0xABABABABABABABABull);
  }
}

TEST(CustomCommands, RoutesAcrossChains) {
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(2, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);
  ASSERT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);

  PacketBuffer pkt;
  const u64 operand[2] = {42, 0};
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kFetchMax8,
                                 /*cub=*/1, 0x40, 5, 0, operand, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  auto rsp = await_response(sim, 0, 0, 500);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cub, 1u);
  EXPECT_EQ(sim.stats(1).custom_ops, 1u);
  u64 word = 0;
  ASSERT_TRUE(sim.device(1).store.read_words(0x40, {&word, 1}));
  EXPECT_EQ(word, 42u);
}

TEST(CustomCommands, RegistrationRequiresQuiescence) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1),
            Status::Ok);
  EXPECT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::InvalidConfig);  // packet in flight
  (void)test::drain_all(sim);
  EXPECT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);
}

TEST(CustomCommands, BankTimingAppliesToCustomOps) {
  DeviceConfig dc = small_device();
  dc.bank_busy_cycles = 12;
  Simulator sim = test::make_simple_sim(dc);
  ASSERT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);
  // Two CMC ops on the same bank: the second waits the busy window.
  PacketBuffer pkt;
  const u64 operand[2] = {1, 0};
  for (Tag t = 1; t <= 2; ++t) {
    ASSERT_EQ(build_custom_request(sim.custom_commands(), kFetchMax8, 0,
                                   0x40, t, 0, operand, pkt),
              Status::Ok);
    ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  }
  const Cycle start = sim.now();
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  const Cycle first = sim.now() - start;
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  const Cycle second = sim.now() - start;
  EXPECT_GE(second - first, 11u);
}

TEST(CustomCommands, SurvivesCheckpointWhenReRegistered) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(sim.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);
  // Put a CMC request mid-flight, checkpoint, restore into a simulator
  // with the same registration.
  PacketBuffer pkt;
  const u64 operand[2] = {9, 0};
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kFetchMax8, 0, 0x40,
                                 7, 0, operand, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  sim.clock();

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);

  Simulator restored;
  // Registration must precede restore so in-flight CMC packets re-resolve.
  // (register_custom_command requires an initialized sim, so bootstrap one
  // with the same config first.)
  ASSERT_EQ(restored.init_simple(test::small_device()), Status::Ok);
  ASSERT_EQ(restored.register_custom_command(kFetchMax8, fetch_max8()),
            Status::Ok);
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  const auto rsp = await_response(restored, 0, 0, 200);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->tag, 7u);
  u64 word = 0;
  ASSERT_TRUE(restored.device(0).store.read_words(0x40, {&word, 1}));
  EXPECT_EQ(word, 9u);
}

}  // namespace
}  // namespace hmcsim
