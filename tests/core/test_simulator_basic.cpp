#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;
using test::small_device;

TEST(SimulatorInit, SimpleBringUp) {
  Simulator sim = make_simple_sim();
  EXPECT_TRUE(sim.initialized());
  EXPECT_EQ(sim.num_devices(), 1u);
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.quiescent());
}

TEST(SimulatorInit, TopologyMismatchRejected) {
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  Topology topo = make_simple(4);  // only one device
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init(sc, std::move(topo), &diag), Status::InvalidConfig);
  EXPECT_FALSE(sim.initialized());
}

TEST(SimulatorInit, LinkCountMismatchRejected) {
  SimConfig sc;
  sc.num_devices = 1;
  sc.device = small_device();
  sc.device.num_links = 8;
  Topology topo = make_simple(4);
  Simulator sim;
  EXPECT_EQ(sim.init(sc, std::move(topo)), Status::InvalidConfig);
}

TEST(SimulatorSend, RejectsBadCoordinates) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_memrequest(0, 0, 0, Command::Rd16, 0, {}, pkt), Status::Ok);
  EXPECT_EQ(sim.send(1, 0, pkt), Status::InvalidArgument);  // no device 1
  EXPECT_EQ(sim.send(0, 9, pkt), Status::InvalidArgument);  // no link 9
}

TEST(SimulatorSend, RejectsNonHostLink) {
  // Chain 0-1: device 0 link 3 is device-wired; host sends there must fail.
  std::string err;
  Topology topo = make_chain(2, 4, /*host_links=*/2, /*trunk_links=*/1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);
  PacketBuffer pkt;
  ASSERT_EQ(build_memrequest(0, 0, 0, Command::Rd16, 3, {}, pkt), Status::Ok);
  EXPECT_EQ(sim.send(0, 3, pkt), Status::InvalidArgument);
  EXPECT_EQ(sim.send(1, 0, pkt), Status::InvalidArgument);  // child device
}

TEST(SimulatorSend, RejectsMalformedPackets) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_memrequest(0, 0x100, 1, Command::Wr16, 0,
                             std::vector<u64>(2, 7), pkt),
            Status::Ok);
  pkt.words[1] ^= 1;  // corrupt payload; CRC now stale
  EXPECT_EQ(sim.send(0, 0, pkt), Status::MalformedPacket);
}

TEST(SimulatorSend, FlowPacketsAreConsumedAtTheLink) {
  Simulator sim = make_simple_sim();
  for (const Command c :
       {Command::Null, Command::Pret, Command::Tret, Command::Irtry}) {
    EXPECT_EQ(send_request(sim, 0, 0, c, 0, 0), Status::Ok);
  }
  EXPECT_EQ(sim.stats(0).flow_packets, 4u);
  EXPECT_EQ(sim.stats(0).sends, 0u);  // not memory traffic
  EXPECT_TRUE(sim.quiescent());      // nothing enqueued
}

TEST(SimulatorBasic, WriteReadRoundTripReturnsData) {
  Simulator sim = make_simple_sim();
  std::vector<u64> payload(8);
  for (usize i = 0; i < 8; ++i) payload[i] = 0xA0 + i;
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr64, 0x1000, 7, 0, payload),
            Status::Ok);
  auto wr = await_response(sim, 0, 0);
  ASSERT_TRUE(wr.has_value());
  EXPECT_EQ(wr->cmd, Command::WriteResponse);
  EXPECT_EQ(wr->tag, 7u);
  EXPECT_EQ(wr->errstat, ErrStat::Ok);
  EXPECT_EQ(wr->cub, 0u);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd64, 0x1000, 8), Status::Ok);
  PacketBuffer raw;
  auto rd = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rd.has_value());
  EXPECT_EQ(rd->cmd, Command::ReadResponse);
  EXPECT_EQ(rd->tag, 8u);
  ASSERT_EQ(raw.payload().size(), 8u);
  for (usize i = 0; i < 8; ++i) EXPECT_EQ(raw.payload()[i], 0xA0 + i);
}

TEST(SimulatorBasic, ResponseReturnsToInjectionLink) {
  Simulator sim = make_simple_sim();
  // Send on link 2; the response must appear on link 2, not link 0.
  ASSERT_EQ(send_request(sim, 0, 2, Command::Rd16, 0x40, 3), Status::Ok);
  for (int i = 0; i < 50; ++i) sim.clock();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  EXPECT_EQ(sim.recv(0, 1, pkt), Status::NoResponse);
  EXPECT_EQ(sim.recv(0, 3, pkt), Status::NoResponse);
  EXPECT_EQ(sim.recv(0, 2, pkt), Status::Ok);
  ResponseFields f;
  ASSERT_EQ(decode_response(pkt, f), Status::Ok);
  EXPECT_EQ(f.slid, 2u);
}

TEST(SimulatorBasic, RecvOnIdleLinkReturnsNoResponse) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  sim.clock();
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
}

TEST(SimulatorBasic, PostedWriteProducesNoResponse) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::PostedWr16, 0x200, 1, 0,
                         {0xDEAD, 0xBEEF}),
            Status::Ok);
  for (int i = 0; i < 30; ++i) sim.clock();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  EXPECT_EQ(sim.stats(0).writes, 1u);
  EXPECT_TRUE(sim.quiescent());
  // The data still landed.
  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(0x200, {&word, 1}));
  EXPECT_EQ(word, 0xDEADu);
}

TEST(SimulatorBasic, StatsCountSendsAndRecvs) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 1), Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 1, Command::Rd16, 0x40, 2), Status::Ok);
  (void)await_response(sim, 0, 0);
  (void)await_response(sim, 0, 1);
  const DeviceStats& s = sim.stats(0);
  EXPECT_EQ(s.sends, 2u);
  EXPECT_EQ(s.recvs, 2u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.responses, 2u);
}

TEST(SimulatorBasic, ResetRestoresPowerOnState) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x80, 1, 0, {1, 2}),
            Status::Ok);
  (void)await_response(sim, 0, 0);
  EXPECT_GT(sim.now(), 0u);
  EXPECT_GT(sim.stats(0).writes, 0u);

  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.stats(0).writes, 0u);
  EXPECT_TRUE(sim.quiescent());
  // Memory was cleared too.
  u64 word = 1;
  ASSERT_TRUE(sim.device(0).store.read_words(0x80, {&word, 1}));
  EXPECT_EQ(word, 0u);
}

TEST(SimulatorBasic, ResetCanPreserveMemory) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x80, 1, 0, {42, 0}),
            Status::Ok);
  (void)await_response(sim, 0, 0);
  sim.reset(/*clear_memory=*/false);
  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(0x80, {&word, 1}));
  EXPECT_EQ(word, 42u);
}

TEST(SimulatorBasic, ModelDataOffSkipsStorage) {
  DeviceConfig dc = small_device();
  dc.model_data = false;
  Simulator sim = make_simple_sim(dc);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr64, 0x1000, 1, 0,
                         std::vector<u64>(8, 0xFF)),
            Status::Ok);
  (void)await_response(sim, 0, 0);
  EXPECT_EQ(sim.device(0).store.resident_pages(), 0u);
  // Reads return zeros.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd64, 0x1000, 2), Status::Ok);
  PacketBuffer raw;
  auto rd = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rd.has_value());
  for (const u64 w : raw.payload()) EXPECT_EQ(w, 0u);
}

TEST(SimulatorBasic, TagsEchoThroughAllValues) {
  Simulator sim = make_simple_sim();
  // Boundary tags: 0, 1, 511.
  for (const Tag tag : {Tag{0}, Tag{1}, Tag{511}}) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 64 * tag, tag),
              Status::Ok);
    auto rsp = await_response(sim, 0, 0);
    ASSERT_TRUE(rsp.has_value());
    EXPECT_EQ(rsp->tag, tag);
  }
}

}  // namespace
}  // namespace hmcsim
