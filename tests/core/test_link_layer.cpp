// Spec link-layer reliability (docs/LINK_LAYER.md): retry buffers, token
// flow control, SEQ continuity, the IRTRY error-abort machine, burst and
// stuck-link fault modes, dead-link escalation, and checkpoint round-trips
// of mid-recovery state.
#include <gtest/gtest.h>

#include <sstream>

#include "core/link_layer.hpp"
#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::drain_all;
using test::send_request;
using test::small_device;

DeviceConfig proto_device() {
  DeviceConfig dc = small_device();
  dc.link_protocol = true;
  dc.link_retry_limit = 8;  // the spec retry machine always replays
  return dc;
}

/// Per-device credit-loop identity: every pool back at its fixed point and
/// lifetime debits equal lifetime returns.  Holds at quiescence for every
/// fault mode short of a dead link (a dead link freezes the loop).
void expect_tokens_conserved(const Simulator& sim) {
  const i64 pool = resolved_link_tokens(sim.config().device);
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    for (u32 l = 0; l < dev.links.size(); ++l) {
      const LinkProtoState& st = dev.links[l].proto;
      SCOPED_TRACE("dev " + std::to_string(d) + " link " + std::to_string(l));
      EXPECT_EQ(st.tokens, pool);
      EXPECT_EQ(st.tokens_debited, st.tokens_returned);
      EXPECT_EQ(st.retry_buf_flits, 0u);
      EXPECT_FALSE(st.replay_pending);
    }
  }
}

/// Run a seeded random workload to completion and return the result.
DriverResult run_workload(Simulator& sim, u64 requests, u32 seed = 7,
                          u64 max_cycles = 400000) {
  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.seed = seed;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.max_cycles = max_cycles;
  HostDriver driver(sim, gen, dcfg);
  return driver.run();
}

TEST(LinkLayer, CleanTrafficCompletesAndConservesTokens) {
  Simulator sim = test::make_simple_sim(proto_device());
  const DriverResult r = run_workload(sim, 2000);
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_TRUE(sim.quiescent());
  expect_tokens_conserved(sim);

  const DeviceStats s = sim.total_stats();
  EXPECT_GT(s.link_tret_tx, 0u);       // credits really cycled
  EXPECT_GT(s.link_tokens_debited, 0u);
  EXPECT_EQ(s.link_crc_errors, 0u);    // no fault model configured
  EXPECT_EQ(s.link_seq_errors, 0u);
  EXPECT_EQ(s.link_retries, 0u);
  EXPECT_EQ(s.link_errors, 0u);
}

TEST(LinkLayer, ProtocolMatchesLegacyCompletionCounts) {
  // The protocol reorders nothing and loses nothing: the same error-free
  // workload retires identically with the layer on and off.
  DeviceConfig off = small_device();
  DeviceConfig on = proto_device();
  Simulator sim_off = test::make_simple_sim(off);
  Simulator sim_on = test::make_simple_sim(on);
  const DriverResult r_off = run_workload(sim_off, 1500);
  const DriverResult r_on = run_workload(sim_on, 1500);
  EXPECT_EQ(r_off.completed, r_on.completed);
  EXPECT_EQ(r_off.errors, r_on.errors);
  EXPECT_EQ(sim_off.total_stats().retired(), sim_on.total_stats().retired());
}

TEST(LinkLayer, TokenExhaustionBlocksInjection) {
  DeviceConfig dc = proto_device();
  dc.link_tokens = spec::kMaxPacketFlits;  // one maximal packet's credits
  Simulator sim = test::make_simple_sim(dc);

  // A maximal 9-FLIT write swallows the entire credit pool in one packet,
  // so the next injection — a single-FLIT read that the request queue has
  // ample room for — must block on tokens, not on queue space.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr128, 0x80, 1), Status::Ok);
  EXPECT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 2), Status::Stalled);
  EXPECT_GT(sim.stats(0).link_token_stalls, 0u);
  EXPECT_GT(sim.stats(0).send_stalls, 0u);

  // Draining the machine returns every credit; injection resumes.
  (void)drain_all(sim);
  expect_tokens_conserved(sim);
  EXPECT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x4000, 99), Status::Ok);
}

TEST(LinkLayer, ErrorAbortRecoversEveryPacket) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 150'000;
  dc.link_retry_limit = 16;
  dc.link_retry_latency = 4;
  Simulator sim = test::make_simple_sim(dc);

  const DriverResult r = run_workload(sim, 2000, 11);
  // Reliability is the point: every corrupted transmission is replayed to
  // completion and the host never sees an error.
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  expect_tokens_conserved(sim);

  const DeviceStats s = sim.total_stats();
  EXPECT_GT(s.link_retries, 0u);
  EXPECT_GT(s.link_crc_errors + s.link_seq_errors, 0u);
  EXPECT_GT(s.link_abort_entries, 0u);
  EXPECT_EQ(s.link_pret_tx, s.link_abort_entries);  // one PRET per abort
  EXPECT_GT(s.link_irtry_tx, s.link_abort_entries); // StartRetry + ClearError
  EXPECT_GT(s.link_replayed_flits, 0u);
  EXPECT_EQ(s.link_errors, 0u);  // legacy kill counter stays quiet
}

TEST(LinkLayer, SeqAndCrcFlavorsBothDetected) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 300'000;
  dc.link_retry_limit = 32;
  dc.link_retry_latency = 2;
  Simulator sim = test::make_simple_sim(dc);
  const DriverResult r = run_workload(sim, 1500, 23);
  EXPECT_EQ(r.errors, 0u);
  const DeviceStats s = sim.total_stats();
  // The injector alternates flavors off the RNG roll: a healthy sample
  // must observe both SEQ discontinuities and CRC failures.
  EXPECT_GT(s.link_seq_errors, 0u);
  EXPECT_GT(s.link_crc_errors, 0u);
}

TEST(LinkLayer, BurstErrorsClusterOnTheLink) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 40'000;
  dc.link_error_burst_len = 4;
  dc.link_retry_limit = 32;
  dc.link_retry_latency = 2;
  Simulator sim = test::make_simple_sim(dc);
  const DriverResult r = run_workload(sim, 2000, 31);
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  expect_tokens_conserved(sim);
  const DeviceStats s = sim.total_stats();
  // Burst continuations are forced CRC failures, so CRC must dominate the
  // SEQ flavor (which only fresh rolls can pick).
  EXPECT_GT(s.link_crc_errors, s.link_seq_errors);
  EXPECT_GT(s.link_retries, 0u);
}

TEST(LinkLayer, StuckLinkRetrainsWithoutLoss) {
  DeviceConfig dc = proto_device();
  dc.link_stuck_interval_cycles = 64;
  dc.link_stuck_window_cycles = 8;
  Simulator sim = test::make_simple_sim(dc);
  const DriverResult r = run_workload(sim, 2000, 5);
  // Retraining windows backpressure; they never drop.
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  expect_tokens_conserved(sim);
  EXPECT_GT(sim.total_stats().link_retrain_cycles, 0u);
}

TEST(LinkLayer, DeadLinkEscalatesToHostVisibleError) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 1'000'000;  // every transmission corrupts
  dc.link_retry_limit = 2;
  dc.link_retry_latency = 2;
  dc.link_fail_threshold = 1;  // first exhaustion kills the link
  Simulator sim = test::make_simple_sim(dc);

  // The packet that exhausts its retry budget answers CRC_FAILURE.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x100, 1), Status::Ok);
  const auto first = await_response(sim, 0, 0, 400);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->errstat, ErrStat::CrcFailure);

  EXPECT_GE(sim.stats(0).link_failures, 1u);
  EXPECT_TRUE(sim.device(0).links[0].proto.dead);

  // Every later injection on the dead link is answered LINK_FAILED
  // immediately — deterministic failure, not a hang.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x200, 2), Status::Ok);
  const auto second = await_response(sim, 0, 0, 50);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->errstat, ErrStat::LinkFailed);

  // Failure is per-link: link 1 never carried traffic, so it is not dead —
  // and under the same total fault storm it answers with its own
  // deterministic CRC_FAILURE (retry exhaustion), not the dead link's
  // LINK_FAILED.
  EXPECT_FALSE(sim.device(0).links[1].proto.dead);
  ASSERT_EQ(send_request(sim, 0, 1, Command::Rd16, 0x300, 3), Status::Ok);
  const auto independent = await_response(sim, 0, 1, 400);
  ASSERT_TRUE(independent.has_value());
  EXPECT_EQ(independent->errstat, ErrStat::CrcFailure);
}

TEST(LinkLayer, RasRegistersExposeRetryAndTokenState) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 1'000'000;
  dc.link_retry_limit = 1;
  dc.link_retry_latency = 2;
  dc.link_fail_threshold = 1;
  Simulator sim = test::make_simple_sim(dc);

  u64 tok = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::RasLinkToken), tok),
            Status::Ok);
  // Idle: zero stalls, minimum pool equals the full pool.
  EXPECT_EQ(tok & 0xffffffffu, 0u);
  EXPECT_EQ((tok >> 32) & 0xffff, resolved_link_tokens(dc));

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x100, 1), Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0, 400).has_value());

  u64 retry = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::RasLinkRetry), retry),
            Status::Ok);
  EXPECT_GT(retry & 0xffffffffu, 0u);        // replays
  EXPECT_GT((retry >> 32) & 0xffff, 0u);     // abort entries
  EXPECT_EQ((retry >> 48) & 0xff, 0x1u);     // link 0 dead
}

TEST(LinkLayer, WatchdogToleratesRecoveryWindows) {
  // A watchdog tight enough to misread an IRTRY exchange as deadlock is
  // rejected up front; a correctly-sized one stays quiet through a storm.
  DeviceConfig bad = proto_device();
  bad.link_retry_latency = 32;
  bad.watchdog_cycles = 30;
  EXPECT_EQ(bad.validate(), Status::InvalidConfig);

  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 150'000;
  dc.link_retry_limit = 16;
  dc.link_retry_latency = 8;
  dc.watchdog_cycles = 2000;
  Simulator sim = test::make_simple_sim(dc);
  const DriverResult r = run_workload(sim, 1000, 17);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_FALSE(sim.watchdog_fired());
}

TEST(LinkLayer, CheckpointRoundTripsMidRecovery) {
  DeviceConfig dc = proto_device();
  dc.link_error_rate_ppm = 250'000;
  dc.link_retry_limit = 16;
  dc.link_retry_latency = 8;
  dc.link_error_burst_len = 2;
  Simulator sim = test::make_simple_sim(dc);

  // Freeze a busy machine mid-storm so link protocol state (token debt,
  // retry pointers, possibly a held replay) is non-trivial.
  GeneratorConfig gc;
  gc.capacity_bytes = u64{1} << 18;
  gc.seed = 41;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1200;
  dcfg.max_cycles = 100000;
  HostDriver driver(sim, gen, dcfg);
  DriverResult r;
  for (int steps = 0; steps < 100 && driver.step(r); ++steps) {
  }
  ASSERT_FALSE(sim.quiescent());

  std::ostringstream saved;
  ASSERT_EQ(sim.save_checkpoint(saved), Status::Ok);

  Simulator restored;
  std::istringstream is(saved.str());
  ASSERT_EQ(restored.restore_checkpoint(is), Status::Ok);

  // Identical continuations: the restored machine replays bit-for-bit.
  for (int i = 0; i < 500; ++i) {
    sim.clock();
    restored.clock();
  }
  std::ostringstream a, b;
  ASSERT_EQ(sim.save_checkpoint(a), Status::Ok);
  ASSERT_EQ(restored.save_checkpoint(b), Status::Ok);
  EXPECT_EQ(a.str(), b.str());
}

TEST(LinkLayer, CorruptPacketsRejectedAtEveryIngress) {
  // Companion to the legacy-replay bugfix: the stored-copy CRC
  // re-validation in the fault model is defense-in-depth, because no
  // ingress path may seat a corrupt packet in a queue in the first
  // place.  Both host send paths — standard requests (validate_packet)
  // and custom commands (decode_custom_request) — must bounce a packet
  // whose CRC no longer matches its bits.
  DeviceConfig dc = small_device();
  Simulator sim = test::make_simple_sim(dc);

  PacketBuffer pkt;
  RequestFields rf;
  rf.cmd = Command::Rd16;
  rf.addr = 0x40;
  rf.tag = 1;
  rf.cub = 0;
  ASSERT_EQ(encode_request(rf, {}, pkt), Status::Ok);
  pkt.words[0] ^= u64{1} << 40;  // corrupt a header bit after sealing
  ASSERT_FALSE(check_crc(pkt));
  EXPECT_EQ(sim.send(0, 0, pkt), Status::MalformedPacket);

  constexpr u8 kNoop16 = 0x05;
  CustomCommandDef def;
  def.name = "NOOP16";
  def.request_flits = 1;
  def.response_flits = 2;
  def.access_bytes = 16;
  def.handler = [](std::span<u64>, std::span<const u64>,
                   std::span<u64> response) {
    for (u64& w : response) w = 0;
  };
  ASSERT_EQ(sim.register_custom_command(kNoop16, std::move(def)), Status::Ok);

  PacketBuffer custom;
  ASSERT_EQ(build_custom_request(sim.custom_commands(), kNoop16, 0, 0x40, 1,
                                 0, {}, custom),
            Status::Ok);
  custom.words[0] ^= u64{1} << 40;
  ASSERT_FALSE(check_crc(custom));
  EXPECT_EQ(sim.send(0, 0, custom), Status::MalformedPacket);

  // Nothing entered a queue; the device is untouched.
  EXPECT_TRUE(sim.quiescent());
  EXPECT_EQ(sim.stats(0).link_errors, 0u);
}

TEST(LinkLayer, LegacyFaultKillsPacketOnceRetriesExhaust) {
  // Legacy-model bugfix regression: when the retry budget runs out the
  // packet must die with CRC_FAILURE, and retries charged never exceed
  // the configured limit per packet.
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 1'000'000;  // every crossing faults
  dc.link_retry_limit = 3;
  Simulator sim = test::make_simple_sim(dc);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 1), Status::Ok);
  const auto rsp = await_response(sim, 0, 0, 500);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->errstat, ErrStat::CrcFailure);
  EXPECT_EQ(sim.stats(0).link_errors, 1u);
  EXPECT_LE(sim.stats(0).link_retries, 3u);
}

TEST(LinkLayer, LegacyReplayStillWorksForHealthyPackets) {
  // Regression guard around the bugfix: a valid packet under the legacy
  // fault model is still replayed (charged to link_retries) and retires.
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 500'000;
  dc.link_retry_limit = 32;
  Simulator sim = test::make_simple_sim(dc);
  const DriverResult r = run_workload(sim, 500, 3);
  EXPECT_EQ(r.completed, 500u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(sim.total_stats().link_retries, 0u);
  EXPECT_EQ(sim.total_stats().link_errors, 0u);
}

TEST(LinkLayer, FastForwardStaysBitIdenticalUnderProtocol) {
  // The idle-cycle fast path must refuse to skip over pending link
  // recovery; with that guard, skipping and slow-stepping agree exactly.
  DeviceConfig slow_cfg = proto_device();
  slow_cfg.link_error_rate_ppm = 100'000;
  slow_cfg.link_retry_limit = 16;
  slow_cfg.link_retry_latency = 16;
  slow_cfg.link_stuck_interval_cycles = 256;
  slow_cfg.link_stuck_window_cycles = 16;
  slow_cfg.fast_forward = false;
  DeviceConfig fast_cfg = slow_cfg;
  fast_cfg.fast_forward = true;

  Simulator slow = test::make_simple_sim(slow_cfg);
  Simulator fast = test::make_simple_sim(fast_cfg);

  for (int burst = 0; burst < 4; ++burst) {
    SCOPED_TRACE("burst " + std::to_string(burst));
    for (Tag t = 0; t < 8; ++t) {
      SCOPED_TRACE("t " + std::to_string(t));
      const Tag tag = static_cast<Tag>(burst * 8 + t);
      const PhysAddr addr = 0x1000 + 64 * tag;
      // A link mid-error-abort backpressures injection; retry in lockstep
      // (both machines roll identical faults, so they stall identically).
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 500);
        const Status ss = send_request(slow, 0, t % 4, Command::Rd16, addr,
                                       tag);
        const Status fs = send_request(fast, 0, t % 4, Command::Rd16, addr,
                                       tag);
        ASSERT_EQ(ss, fs);
        if (ss == Status::Ok) break;
        ASSERT_EQ(ss, Status::Stalled);
        slow.clock();
        fast.clock();
      }
    }
    // Long idle gap: the fast path may only arm once recovery drains.
    for (int i = 0; i < 2000; ++i) {
      slow.clock();
      fast.clock();
    }
  }
  EXPECT_EQ(slow.now(), fast.now());
  EXPECT_GT(fast.cycles_skipped(), 0u);

  std::ostringstream a, b;
  ASSERT_EQ(slow.save_checkpoint(a), Status::Ok);
  ASSERT_EQ(fast.save_checkpoint(b), Status::Ok);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace hmcsim
