// Open-page (row-buffer) policy: hit/miss timing, refresh interaction, and
// the stream-vs-random behavioral split.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

DeviceConfig open_page_device() {
  DeviceConfig dc = small_device();
  dc.row_policy = RowPolicy::OpenPage;
  dc.row_hit_cycles = 3;
  dc.row_miss_cycles = 20;
  return dc;
}

TEST(RowPolicy, ClosedPageCountsNoRowEvents) {
  Simulator sim = test::make_simple_sim();
  for (Tag t = 0; t < 8; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 16 * t, t),
              Status::Ok);
  }
  (void)test::drain_all(sim);
  EXPECT_EQ(sim.total_stats().row_hits, 0u);
  EXPECT_EQ(sim.total_stats().row_misses, 0u);
}

TEST(RowPolicy, FirstAccessMissesThenSameRowHits) {
  Simulator sim = test::make_simple_sim(open_page_device());
  // Two reads to the same 16-byte block: same bank, same row.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 2),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  EXPECT_EQ(sim.stats(0).row_misses, 1u);
  EXPECT_EQ(sim.stats(0).row_hits, 1u);
}

TEST(RowPolicy, DifferentRowsSameBankMissTwice) {
  Simulator sim = test::make_simple_sim(open_page_device());
  const AddressMap& map = sim.device(0).address_map();
  // Two addresses in the same vault+bank but different rows.
  PhysAddr first = 0x40;
  PhysAddr second = 0;
  for (PhysAddr a = first + 16; a < (u64{1} << 31); a += 16) {
    if (map.vault_of(a) == map.vault_of(first) &&
        map.bank_of(a) == map.bank_of(first) &&
        map.row_of(a) != map.row_of(first)) {
      second = a;
      break;
    }
  }
  ASSERT_NE(second, 0u);
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, first, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, second, 2),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  EXPECT_EQ(sim.stats(0).row_misses, 2u);
  EXPECT_EQ(sim.stats(0).row_hits, 0u);
}

TEST(RowPolicy, HitTimingIsFasterThanMissTiming) {
  // A chain of same-bank accesses serializes on the bank: each gap equals
  // the PREVIOUS access's busy time.  Four same-row reads therefore finish
  // in ~(miss + 3*hit) cycles; four alternating-row reads take ~4*miss.
  const auto chain_cycles = [](bool same_row) {
    Simulator sim = test::make_simple_sim(open_page_device());
    const AddressMap& map = sim.device(0).address_map();
    PhysAddr other_row = 0;
    for (PhysAddr a = 0x50; a < (u64{1} << 31); a += 16) {
      if (map.vault_of(a) == map.vault_of(0x40) &&
          map.bank_of(a) == map.bank_of(0x40) &&
          map.row_of(a) != map.row_of(0x40)) {
        other_row = a;
        break;
      }
    }
    EXPECT_NE(other_row, 0u);
    for (Tag t = 0; t < 4; ++t) {
      const PhysAddr addr =
          same_row ? PhysAddr{0x40} : (t % 2 == 0 ? 0x40 : other_row);
      EXPECT_EQ(test::send_request(sim, 0, 0, Command::Rd16, addr, t),
                Status::Ok);
    }
    const Cycle start = sim.now();
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(test::await_response(sim, 0, 0, 500).has_value());
    }
    return sim.now() - start;
  };
  const Cycle hits = chain_cycles(true);
  const Cycle misses = chain_cycles(false);
  // Same-row chain: 1 miss + 3 hits of bank time (responses at cycles
  // 4/24/27/30); alternating rows re-open every access (4/24/44/64).
  EXPECT_EQ(hits, 30u);
  EXPECT_EQ(misses, 64u);
}

TEST(RowPolicy, RefreshClosesOpenRows) {
  DeviceConfig dc = open_page_device();
  dc.refresh_interval_cycles = 40;
  dc.refresh_busy_cycles = 2;
  Simulator sim = test::make_simple_sim(dc);
  // Open a row in vault 0's bank, then wait past vault 0's next refresh
  // slot; the follow-up access to the SAME row must miss again.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  EXPECT_EQ(sim.stats(0).row_misses, 1u);
  while (sim.stats(0).refreshes < 32) sim.clock();  // several tREFI passes
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 2),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  EXPECT_EQ(sim.stats(0).row_misses, 2u);
  EXPECT_EQ(sim.stats(0).row_hits, 0u);
}

TEST(RowPolicy, StreamsHitAndRandomMisses) {
  const auto hit_rate = [](bool sequential) {
    DeviceConfig dc = open_page_device();
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    gc.request_bytes = 64;
    DriverConfig dcfg;
    dcfg.total_requests = 4000;
    dcfg.max_cycles = 500000;
    DriverResult r;
    if (sequential) {
      StreamGenerator gen(gc);
      r = HostDriver(sim, gen, dcfg).run();
    } else {
      RandomAccessGenerator gen(gc);
      r = HostDriver(sim, gen, dcfg).run();
    }
    EXPECT_EQ(r.completed, 4000u);
    const DeviceStats s = sim.total_stats();
    return static_cast<double>(s.row_hits) /
           static_cast<double>(s.row_hits + s.row_misses);
  };
  const double stream_hits = hit_rate(true);
  const double random_hits = hit_rate(false);
  // Sequential blocks revisit each row many times before moving on; random
  // addresses over 2 GB essentially never hit.
  EXPECT_GT(stream_hits, 0.5);
  EXPECT_LT(random_hits, 0.1);
}

TEST(RowPolicy, ConservationUnderOpenPage) {
  DeviceConfig dc = open_page_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 3000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 3000u);
  EXPECT_EQ(sim.total_stats().row_hits + sim.total_stats().row_misses,
            3000u);
}

}  // namespace
}  // namespace hmcsim
