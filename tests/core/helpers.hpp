// Shared helpers for core simulator tests.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/simulator.hpp"

namespace hmcsim::test {

/// A small, fast device: 4 links, 8 banks, shallow queues, short bank busy
/// time.  Geometry is still spec-conformant (16 vaults, 2 GB).
inline DeviceConfig small_device() {
  DeviceConfig dc;
  dc.num_links = 4;
  dc.banks_per_vault = 8;
  dc.xbar_depth = 8;
  dc.vault_depth = 4;
  dc.bank_busy_cycles = 2;
  dc.xbar_flits_per_cycle = 16;
  return dc;
}

/// Simulator with one small device, all links host-attached.
inline Simulator make_simple_sim(DeviceConfig dc = small_device()) {
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
  return sim;
}

/// Encode-and-send helper; fails the test on encode errors.
inline Status send_request(Simulator& sim, u32 dev, u32 link, Command cmd,
                           PhysAddr addr, Tag tag, u32 cub = 0,
                           std::vector<u64> payload = {}) {
  payload.resize(request_data_bytes(cmd) / 8, 0);
  PacketBuffer pkt;
  const Status es = build_memrequest(cub, addr, tag, cmd, link, payload, pkt);
  EXPECT_EQ(es, Status::Ok);
  if (!ok(es)) return es;
  return sim.send(dev, link, pkt);
}

/// Clock until a response appears on (dev, link) or `max_cycles` elapse.
inline std::optional<ResponseFields> await_response(
    Simulator& sim, u32 dev, u32 link, u32 max_cycles = 200,
    PacketBuffer* raw = nullptr) {
  PacketBuffer pkt;
  for (u32 i = 0; i < max_cycles; ++i) {
    if (ok(sim.recv(dev, link, pkt))) {
      ResponseFields f;
      EXPECT_EQ(decode_response(pkt, f), Status::Ok);
      if (raw != nullptr) *raw = pkt;
      return f;
    }
    sim.clock();
  }
  return std::nullopt;
}

/// Drain every pending response on every host port until the simulator is
/// quiescent or the cycle budget runs out.  Returns the drained responses.
inline std::vector<ResponseFields> drain_all(Simulator& sim,
                                             u32 max_cycles = 500) {
  std::vector<ResponseFields> responses;
  const auto ports = sim.topology().host_ports();
  for (u32 i = 0; i < max_cycles; ++i) {
    PacketBuffer pkt;
    for (const auto& p : ports) {
      while (ok(sim.recv(p.dev, p.link, pkt))) {
        ResponseFields f;
        EXPECT_EQ(decode_response(pkt, f), Status::Ok);
        responses.push_back(f);
      }
    }
    if (sim.quiescent()) break;
    sim.clock();
  }
  return responses;
}

}  // namespace hmcsim::test
