#include "core/config_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hmcsim {
namespace {

TEST(ConfigFile, EmptyStreamYieldsDefaults) {
  const auto r = parse_config_string("");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.num_devices, 1u);
  EXPECT_EQ(r.config.device.num_links, 4u);
  EXPECT_EQ(r.config.device.banks_per_vault, 8u);
}

TEST(ConfigFile, FullTable1ConfigC) {
  const auto r = parse_config_string(R"(
# Table I configuration C
num_devices   = 1
num_links     = 8
banks_per_vault = 8
xbar_depth    = 128
vault_depth   = 64
capacity_gb   = 4        # cross-checked against the geometry
map_mode      = low_interleave
vault_schedule = bank_ready
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.device.num_links, 8u);
  EXPECT_EQ(r.config.device.capacity_bytes, u64{4} << 30);
  EXPECT_EQ(r.config.device.xbar_depth, 128u);
}

TEST(ConfigFile, CommentsAndWhitespaceAreTolerated) {
  const auto r = parse_config_string(
      "  # leading comment\n"
      "\n"
      "\tnum_links =\t8   # trailing comment\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.device.num_links, 8u);
}

TEST(ConfigFile, UnknownKeyIsAnErrorWithLineNumber) {
  const auto r = parse_config_string("num_links = 4\nnum_linkss = 8\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("2:"), std::string::npos);
  EXPECT_NE(r.error.find("num_linkss"), std::string::npos);
}

TEST(ConfigFile, MalformedLinesAreErrors) {
  EXPECT_FALSE(parse_config_string("num_links 4").ok);          // no '='
  EXPECT_FALSE(parse_config_string("num_links =").ok);          // no value
  EXPECT_FALSE(parse_config_string("= 4").ok);                  // no key
  EXPECT_FALSE(parse_config_string("num_links = four").ok);     // not number
  EXPECT_FALSE(parse_config_string("map_mode = diagonal").ok);  // bad enum
  EXPECT_FALSE(parse_config_string("model_data = maybe").ok);
}

TEST(ConfigFile, SemanticValidationStillApplies) {
  // Parseable but architecturally invalid: 6 links.
  const auto r = parse_config_string("num_links = 6\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("invalid configuration"), std::string::npos);
  // Capacity mismatch caught by the cross-check.
  EXPECT_FALSE(parse_config_string("num_links = 4\ncapacity_gb = 8\n").ok);
}

TEST(ConfigFile, EnumsAndBooleans) {
  const auto r = parse_config_string(
      "map_mode = linear\n"
      "vault_schedule = strict_fifo\n"
      "model_data = false\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.device.map_mode, AddrMapMode::Linear);
  EXPECT_EQ(r.config.device.vault_schedule, VaultSchedule::StrictFifo);
  EXPECT_FALSE(r.config.device.model_data);
}

TEST(ConfigFile, WriteParseRoundTrip) {
  SimConfig original;
  original.num_devices = 1;
  original.device = table1_config_8link_16bank();
  original.device.map_mode = AddrMapMode::BankFirst;
  original.device.vault_schedule = VaultSchedule::StrictFifo;
  original.device.link_error_rate_ppm = 1234;
  original.device.link_retry_limit = 3;
  original.device.refresh_interval_cycles = 9750;
  original.device.model_data = false;

  std::ostringstream os;
  write_config(os, original);
  const auto r = parse_config_string(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  const DeviceConfig& a = original.device;
  const DeviceConfig& b = r.config.device;
  EXPECT_EQ(a.num_links, b.num_links);
  EXPECT_EQ(a.banks_per_vault, b.banks_per_vault);
  EXPECT_EQ(a.xbar_depth, b.xbar_depth);
  EXPECT_EQ(a.vault_depth, b.vault_depth);
  EXPECT_EQ(a.map_mode, b.map_mode);
  EXPECT_EQ(a.vault_schedule, b.vault_schedule);
  EXPECT_EQ(a.link_error_rate_ppm, b.link_error_rate_ppm);
  EXPECT_EQ(a.link_retry_limit, b.link_retry_limit);
  EXPECT_EQ(a.refresh_interval_cycles, b.refresh_interval_cycles);
  EXPECT_EQ(a.model_data, b.model_data);
  EXPECT_EQ(a.derived_capacity(), b.derived_capacity());
}

TEST(ConfigFile, LinkProtocolKnobsRoundTrip) {
  const auto r = parse_config_string(
      "link_protocol = true\n"
      "link_retry_limit = 8\n"
      "link_tokens = 48\n"
      "link_retry_buffer_flits = 64\n"
      "link_retry_latency = 12\n"
      "link_error_burst_len = 4\n"
      "link_stuck_interval_cycles = 512\n"
      "link_stuck_window_cycles = 32\n"
      "link_fail_threshold = 3\n");
  ASSERT_TRUE(r.ok) << r.error;
  const DeviceConfig& dc = r.config.device;
  EXPECT_TRUE(dc.link_protocol);
  EXPECT_EQ(dc.link_tokens, 48u);
  EXPECT_EQ(dc.link_retry_buffer_flits, 64u);
  EXPECT_EQ(dc.link_retry_latency, 12u);
  EXPECT_EQ(dc.link_error_burst_len, 4u);
  EXPECT_EQ(dc.link_stuck_interval_cycles, 512u);
  EXPECT_EQ(dc.link_stuck_window_cycles, 32u);
  EXPECT_EQ(dc.link_fail_threshold, 3u);

  // Writer emits every knob; re-parsing converges to the same config.
  std::ostringstream os;
  write_config(os, r.config);
  const auto round = parse_config_string(os.str());
  ASSERT_TRUE(round.ok) << round.error;
  EXPECT_TRUE(round.config.device.link_protocol);
  EXPECT_EQ(round.config.device.link_tokens, 48u);
  EXPECT_EQ(round.config.device.link_stuck_interval_cycles, 512u);
  EXPECT_EQ(round.config.device.link_fail_threshold, 3u);
}

TEST(ConfigFile, LinkProtocolSemanticValidationStillApplies) {
  // Parsing is syntactic; the semantic cross-check (sub-knobs need the
  // protocol) still runs before a config is accepted.
  const auto r = parse_config_string("link_tokens = 32\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("link_protocol"), std::string::npos) << r.error;
}

TEST(ConfigFile, FaultKnobsParse) {
  const auto r = parse_config_string(
      "link_error_rate_ppm = 5000\n"
      "fault_seed = 42\n"
      "link_retry_limit = 7\n"
      "refresh_interval_cycles = 9750\n"
      "refresh_busy_cycles = 440\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.device.link_error_rate_ppm, 5000u);
  EXPECT_EQ(r.config.device.fault_seed, 42u);
  EXPECT_EQ(r.config.device.link_retry_limit, 7u);
  EXPECT_EQ(r.config.device.refresh_interval_cycles, 9750u);
}

TEST(ConfigFile, TimingBackendKnobsParse) {
  const auto r = parse_config_string(
      "timing_backend = generic_ddr\n"
      "ddr_tcl = 7\n"
      "ddr_trcd = 4\n"
      "ddr_trp = 4\n"
      "ddr_tras = 12\n"
      "vault_backend = 3:pcm_like\n"
      "vault_backend = 8-10:hmc_dram\n"
      "pcm_read_cycles = 20\n"
      "pcm_write_cycles = 60\n"
      "pcm_write_gap_cycles = 9\n");
  ASSERT_TRUE(r.ok) << r.error;
  const DeviceConfig& dc = r.config.device;
  EXPECT_EQ(dc.timing_backend, TimingBackend::GenericDdr);
  EXPECT_EQ(dc.ddr_tcl, 7u);
  EXPECT_EQ(dc.ddr_tras, 12u);
  EXPECT_EQ(dc.pcm_write_cycles, 60u);
  EXPECT_EQ(dc.pcm_write_gap_cycles, 9u);
  ASSERT_EQ(dc.vault_backends.size(), 4u);
  EXPECT_EQ(dc.backend_for_vault(3), TimingBackend::PcmLike);
  EXPECT_EQ(dc.backend_for_vault(9), TimingBackend::HmcDram);
  EXPECT_EQ(dc.backend_for_vault(0), TimingBackend::GenericDdr);
}

TEST(ConfigFile, UnknownBackendNameIsAnErrorWithLineNumber) {
  const auto r =
      parse_config_string("num_links = 4\ntiming_backend = nvdimm\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("2:"), std::string::npos);
  EXPECT_NE(r.error.find("nvdimm"), std::string::npos);
  // The diagnostic names the valid choices.
  EXPECT_NE(r.error.find("pcm_like"), std::string::npos);
}

TEST(ConfigFile, MalformedVaultBackendSpecsAreErrors) {
  EXPECT_FALSE(parse_config_string("vault_backend = pcm_like").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = 3:").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = :pcm_like").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = three:pcm_like").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = 3:nvdimm").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = 99:pcm_like").ok);
  EXPECT_FALSE(parse_config_string("vault_backend = 5-3:pcm_like").ok);
  // Duplicate index, whether listed twice or covered by two ranges.
  const auto dup = parse_config_string(
      "vault_backend = 3:pcm_like\nvault_backend = 1-4:generic_ddr\n");
  ASSERT_FALSE(dup.ok);
  EXPECT_NE(dup.error.find("twice"), std::string::npos);
}

TEST(ConfigFile, InvalidBackendParamsAreRejected) {
  // Parseable but semantically invalid: zero CAS latency, zero read
  // latency, and a write latency below the read latency.
  EXPECT_FALSE(
      parse_config_string("timing_backend = generic_ddr\nddr_tcl = 0\n").ok);
  EXPECT_FALSE(
      parse_config_string("timing_backend = pcm_like\npcm_read_cycles = 0\n")
          .ok);
  EXPECT_FALSE(parse_config_string("timing_backend = pcm_like\n"
                                   "pcm_read_cycles = 30\n"
                                   "pcm_write_cycles = 10\n")
                   .ok);
}

TEST(ConfigFile, ChaosInvariantsKnobParsesAndRoundTrips) {
  const auto r = parse_config_string("chaos_invariants = 512\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.device.chaos_invariants, 512u);
  std::ostringstream os;
  write_config(os, r.config);
  const auto round = parse_config_string(os.str());
  ASSERT_TRUE(round.ok) << round.error;
  EXPECT_EQ(round.config.device.chaos_invariants, 512u);
  const auto bad = parse_config_string("chaos_invariants = lots\n");
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("needs a number"), std::string::npos);
}

TEST(ConfigFile, OverlongLinesAreRefusedWithALineNumber) {
  // A hostile or corrupt file must not balloon memory line by line: any
  // line past the 64 KiB bound is a typed error, not a silent read.
  std::string text = "num_links = 4\nsim_threads = ";
  text.append(70000, '1');
  text += "\n";
  const auto r = parse_config_string(text);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.substr(0, 2), "2:");
  EXPECT_NE(r.error.find("65536"), std::string::npos);
}

TEST(ConfigFile, VaultBackendSelectionRoundTrips) {
  SimConfig original;
  original.device.timing_backend = TimingBackend::PcmLike;
  original.device.vault_backends = {{0, TimingBackend::HmcDram},
                                    {5, TimingBackend::GenericDdr},
                                    {15, TimingBackend::PcmLike}};
  original.device.ddr_tcl = 8;
  original.device.pcm_read_cycles = 18;
  original.device.pcm_write_cycles = 50;
  original.device.pcm_write_gap_cycles = 4;

  std::ostringstream os;
  write_config(os, original);
  const auto r = parse_config_string(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  const DeviceConfig& a = original.device;
  const DeviceConfig& b = r.config.device;
  EXPECT_EQ(a.timing_backend, b.timing_backend);
  EXPECT_EQ(a.vault_backends, b.vault_backends);
  EXPECT_EQ(a.ddr_tcl, b.ddr_tcl);
  EXPECT_EQ(a.pcm_read_cycles, b.pcm_read_cycles);
  EXPECT_EQ(a.pcm_write_cycles, b.pcm_write_cycles);
  EXPECT_EQ(a.pcm_write_gap_cycles, b.pcm_write_gap_cycles);
}

}  // namespace
}  // namespace hmcsim
