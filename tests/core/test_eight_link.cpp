// 8-link device specifics: 32 vaults, 8 quads, per-link locality, and the
// larger register file.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

DeviceConfig eight_link_device() {
  DeviceConfig dc = test::small_device();
  dc.num_links = 8;
  dc.banks_per_vault = 16;
  return dc;
}

TEST(EightLink, StructureScalesUp) {
  Simulator sim = test::make_simple_sim(eight_link_device());
  const Device& dev = sim.device(0);
  EXPECT_EQ(dev.links.size(), 8u);
  EXPECT_EQ(dev.vaults.size(), 32u);
  EXPECT_EQ(dev.config().num_quads(), 8u);
  EXPECT_EQ(dev.store.capacity(), u64{8} << 30);
  for (const auto& vault : dev.vaults) {
    EXPECT_EQ(vault.bank_busy_until.size(), 16u);
  }
}

TEST(EightLink, AllEightLinksCarryTraffic) {
  Simulator sim = test::make_simple_sim(eight_link_device());
  for (u32 l = 0; l < 8; ++l) {
    ASSERT_EQ(test::send_request(sim, 0, l, Command::Rd16, 64 * l,
                                 static_cast<Tag>(l)),
              Status::Ok);
  }
  for (u32 l = 0; l < 8; ++l) {
    const auto rsp = test::await_response(sim, 0, l, 100);
    ASSERT_TRUE(rsp.has_value()) << "link " << l;
    EXPECT_EQ(rsp->tag, l);
    EXPECT_EQ(rsp->slid, l);
  }
}

TEST(EightLink, QuadLocalityCoversAllEightQuads) {
  Simulator sim = test::make_simple_sim(eight_link_device());
  const AddressMap& map = sim.device(0).address_map();
  // For every quad, find an address in it and inject on the co-located
  // link: no latency penalties anywhere.
  for (u32 quad = 0; quad < 8; ++quad) {
    PhysAddr addr = kNoCoord;
    for (PhysAddr a = 0; a < (1u << 20); a += 16) {
      if (map.vault_of(a) / 4 == quad) {
        addr = a;
        break;
      }
    }
    ASSERT_NE(addr, kNoCoord) << "quad " << quad;
    ASSERT_EQ(test::send_request(sim, 0, quad, Command::Rd16, addr,
                                 static_cast<Tag>(quad)),
              Status::Ok);
    ASSERT_TRUE(test::await_response(sim, 0, quad, 100).has_value());
  }
  EXPECT_EQ(sim.stats(0).latency_penalties, 0u);
}

TEST(EightLink, ThirtyTwoVaultAddressingUsesBit33) {
  // The 8 GB, 33-bit address space must decode and round-trip above 4 GB.
  Simulator sim = test::make_simple_sim(eight_link_device());
  const PhysAddr high = (u64{1} << 32) + 0x40;  // above the 4 GB line
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, high, 1, 0,
                               {0x1234, 0}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, high, 2),
            Status::Ok);
  PacketBuffer raw;
  const auto rsp = test::await_response(sim, 0, 0, 100, &raw);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(raw.payload()[0], 0x1234u);
}

TEST(EightLink, VaultMaskHandlesAllThirtyTwoVaults) {
  // Saturating traffic must reach vaults 16..31 (guards the 64-bit vault
  // blocking mask in the crossbar).
  DeviceConfig dc = eight_link_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  Tag tag = 0;
  PacketBuffer pkt;
  u64 completed = 0;
  const AddressMap& map = sim.device(0).address_map();
  while (completed < 512) {
    for (u32 l = 0; l < 8; ++l) {
      (void)test::send_request(sim, 0, l, Command::Rd16,
                               (u64{tag} * 16) % (1u << 20), tag);
      tag = static_cast<Tag>((tag + 1) % 512);
    }
    for (u32 l = 0; l < 8; ++l) {
      while (ok(sim.recv(0, l, pkt))) ++completed;
    }
    sim.clock();
    ASSERT_LT(sim.now(), 10000u);
  }
  u32 vaults_hit = 0;
  for (u32 v = 0; v < 32; ++v) {
    if (sim.device(0).vaults[v].rqst.stats().total_pops > 0) ++vaults_hit;
  }
  (void)map;
  EXPECT_EQ(vaults_hit, 32u);
}

}  // namespace
}  // namespace hmcsim
