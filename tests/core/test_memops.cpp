// Memory operation semantics: every write size, read size, atomic and
// bit-write command, posted and non-posted, against the backing store.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;

class WriteSizes : public ::testing::TestWithParam<u32> {};

TEST_P(WriteSizes, WriteThenReadBackEverySize) {
  const u32 bytes = GetParam();
  Simulator sim = make_simple_sim();
  const Command wr = static_cast<Command>(
      static_cast<u8>(Command::Wr16) + (bytes / 16 - 1));
  const Command rd = static_cast<Command>(
      static_cast<u8>(Command::Rd16) + (bytes / 16 - 1));

  std::vector<u64> payload(bytes / 8);
  for (usize i = 0; i < payload.size(); ++i) payload[i] = 0xC0DE0000 + i;
  const PhysAddr addr = 0x4000;

  ASSERT_EQ(send_request(sim, 0, 0, wr, addr, 1, 0, payload), Status::Ok);
  auto wrsp = await_response(sim, 0, 0);
  ASSERT_TRUE(wrsp.has_value());
  EXPECT_EQ(wrsp->cmd, Command::WriteResponse);

  ASSERT_EQ(send_request(sim, 0, 0, rd, addr, 2), Status::Ok);
  PacketBuffer raw;
  auto rrsp = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rrsp.has_value());
  EXPECT_EQ(rrsp->cmd, Command::ReadResponse);
  ASSERT_EQ(raw.payload().size(), payload.size());
  for (usize i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(raw.payload()[i], payload[i]) << "word " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, WriteSizes,
                         ::testing::Values(16, 32, 48, 64, 80, 96, 112, 128),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

class PostedWriteSizes : public ::testing::TestWithParam<u32> {};

TEST_P(PostedWriteSizes, PostedWriteLandsWithoutResponse) {
  const u32 bytes = GetParam();
  Simulator sim = make_simple_sim();
  const Command pwr = static_cast<Command>(
      static_cast<u8>(Command::PostedWr16) + (bytes / 16 - 1));
  std::vector<u64> payload(bytes / 8, 0x55AA);
  ASSERT_EQ(send_request(sim, 0, 0, pwr, 0x8000, 1, 0, payload), Status::Ok);
  for (int i = 0; i < 20; ++i) sim.clock();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(0x8000, {&word, 1}));
  EXPECT_EQ(word, 0x55AAu);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PostedWriteSizes,
                         ::testing::Values(16, 64, 128),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST(Atomics, TwoAdd8AddsWordsIndependently) {
  Simulator sim = make_simple_sim();
  const PhysAddr addr = 0x100;
  // Seed memory: two words near overflow to prove no cross-word carry.
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, addr, 1, 0,
                         {0xFFFFFFFFFFFFFFFFull, 100}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  ASSERT_EQ(send_request(sim, 0, 0, Command::TwoAdd8, addr, 2, 0, {2, 5}),
            Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::WriteResponse);

  u64 words[2];
  ASSERT_TRUE(sim.device(0).store.read_words(addr, words));
  EXPECT_EQ(words[0], 1u);    // wrapped, no carry out
  EXPECT_EQ(words[1], 105u);  // untouched by word 0's overflow
  EXPECT_EQ(sim.stats(0).atomics, 1u);
}

TEST(Atomics, Add16PropagatesCarry) {
  Simulator sim = make_simple_sim();
  const PhysAddr addr = 0x200;
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, addr, 1, 0,
                         {0xFFFFFFFFFFFFFFFFull, 7}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  ASSERT_EQ(send_request(sim, 0, 0, Command::Add16, addr, 2, 0, {1, 0}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  u64 words[2];
  ASSERT_TRUE(sim.device(0).store.read_words(addr, words));
  EXPECT_EQ(words[0], 0u);  // 0xFFFF.. + 1 wraps...
  EXPECT_EQ(words[1], 8u);  // ...and carries into the high word
}

TEST(Atomics, BitWriteAppliesMask) {
  Simulator sim = make_simple_sim();
  const PhysAddr addr = 0x300;
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, addr, 1, 0,
                         {0xAAAAAAAAAAAAAAAAull, 0}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  // data = all ones, mask = low 16 bits: only those bits may change.
  ASSERT_EQ(send_request(sim, 0, 0, Command::BitWrite, addr, 2, 0,
                         {0xFFFFFFFFFFFFFFFFull, 0xFFFFull}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());

  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(addr, {&word, 1}));
  EXPECT_EQ(word, 0xAAAAAAAAAAAAFFFFull);
}

TEST(Atomics, PostedVariantsProduceNoResponse) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::PostedTwoAdd8, 0x400, 1, 0,
                         {3, 4}),
            Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::PostedAdd16, 0x500, 2, 0,
                         {10, 0}),
            Status::Ok);
  ASSERT_EQ(send_request(sim, 0, 0, Command::PostedBitWrite, 0x600, 3, 0,
                         {0xFF, 0xFF}),
            Status::Ok);
  for (int i = 0; i < 30; ++i) sim.clock();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  EXPECT_EQ(sim.stats(0).atomics, 3u);
  u64 word = 0;
  ASSERT_TRUE(sim.device(0).store.read_words(0x400, {&word, 1}));
  EXPECT_EQ(word, 3u);
  ASSERT_TRUE(sim.device(0).store.read_words(0x500, {&word, 1}));
  EXPECT_EQ(word, 10u);
  ASSERT_TRUE(sim.device(0).store.read_words(0x600, {&word, 1}));
  EXPECT_EQ(word, 0xFFu);
}

TEST(Atomics, RepeatedAddsAccumulate) {
  Simulator sim = make_simple_sim();
  const PhysAddr addr = 0x700;
  for (Tag t = 1; t <= 10; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::TwoAdd8, addr, t, 0, {1, 2}),
              Status::Ok);
    ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  }
  u64 words[2];
  ASSERT_TRUE(sim.device(0).store.read_words(addr, words));
  EXPECT_EQ(words[0], 10u);
  EXPECT_EQ(words[1], 20u);
}

TEST(MemOps, ReadOfUnwrittenMemoryIsZero) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd32, 0x9000, 1), Status::Ok);
  PacketBuffer raw;
  auto rsp = await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rsp.has_value());
  ASSERT_EQ(raw.payload().size(), 4u);
  for (const u64 w : raw.payload()) EXPECT_EQ(w, 0u);
}

TEST(MemOps, InterleavedWritesToDistinctVaultsAllLand) {
  Simulator sim = make_simple_sim();
  const AddressMap& map = sim.device(0).address_map();
  std::vector<PhysAddr> addrs;
  for (PhysAddr a = 0; addrs.size() < 16 && a < (1u << 20); a += 16) {
    if (map.vault_of(a) == addrs.size()) addrs.push_back(a);
  }
  ASSERT_EQ(addrs.size(), 16u);
  for (usize i = 0; i < addrs.size(); ++i) {
    ASSERT_EQ(send_request(sim, 0, static_cast<u32>(i % 4), Command::Wr16,
                           addrs[i], static_cast<Tag>(i), 0,
                           {u64{0xBB00} + i, 0}),
              Status::Ok);
  }
  const auto responses = test::drain_all(sim);
  EXPECT_EQ(responses.size(), 16u);
  for (usize i = 0; i < addrs.size(); ++i) {
    u64 word = 0;
    ASSERT_TRUE(sim.device(0).store.read_words(addrs[i], {&word, 1}));
    EXPECT_EQ(word, 0xBB00 + i);
  }
}

TEST(MemOps, WriteAtCapacityBoundarySucceedsJustInside) {
  Simulator sim = make_simple_sim();
  const u64 cap = sim.device(0).store.capacity();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, cap - 16, 1, 0, {1, 2}),
            Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::WriteResponse);
  EXPECT_EQ(rsp->errstat, ErrStat::Ok);
}

}  // namespace
}  // namespace hmcsim
