// End-to-end RAS subsystem: DRAM ECC fault handling (SECDED correction and
// DBE poisoning), background scrubbing, vault degradation with optional
// remap, the RAS error-log register block, and the forward-progress
// watchdog.  Conservation: under any fault rate every request terminates.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

DeviceConfig ras_device() {
  DeviceConfig dc = small_device();
  dc.model_data = true;  // the fault domain lives in the data store
  return dc;
}

u64 ras_reg(Simulator& sim, Reg r) {
  u64 value = 0;
  EXPECT_EQ(sim.jtag_reg_read(0, phys_from_reg(r), value), Status::Ok);
  return value;
}

TEST(DramEcc, SingleBitFaultCorrectedTransparently) {
  Simulator sim = test::make_simple_sim(ras_device());
  const std::vector<u64> payload = {0xdeadbeefcafef00dull, 0x0123456789abcdefull};
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x1000, 1, 0,
                               payload),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());

  // Plant a single-bit fault directly; rates stay zero, so discovery is
  // driven purely by the sidecar being non-empty.
  const std::array<u32, 1> bit = {17};
  ASSERT_TRUE(sim.device(0).store.plant_fault(0x1000, bit));

  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x1000, 2),
            Status::Ok);
  PacketBuffer raw;
  const auto rsp = test::await_response(sim, 0, 0, 200, &raw);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_NE(rsp->cmd, Command::Error);
  ASSERT_GE(raw.payload().size(), 2u);
  EXPECT_EQ(raw.payload()[0], payload[0]);  // corrected before the read
  EXPECT_EQ(raw.payload()[1], payload[1]);

  EXPECT_EQ(sim.stats(0).dram_sbes, 1u);
  EXPECT_EQ(sim.stats(0).dram_dbes, 0u);
  EXPECT_EQ(sim.device(0).store.fault_count(), 0u);
  EXPECT_EQ(ras_reg(sim, Reg::RasSbe) & 0xffffffffu, 1u);
}

TEST(DramEcc, DoubleBitFaultPoisonsResponse) {
  Simulator sim = test::make_simple_sim(ras_device());
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x2000, 1, 0,
                               {0x1111, 0x2222}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());

  const std::array<u32, 2> bits = {3, 55};
  ASSERT_TRUE(sim.device(0).store.plant_fault(0x2000, bits));

  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x2000, 2),
            Status::Ok);
  const auto rsp = test::await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::DramDbe);

  EXPECT_EQ(sim.stats(0).dram_dbes, 1u);
  EXPECT_EQ(ras_reg(sim, Reg::RasDbe) & 0xffffffffu, 1u);
  EXPECT_EQ(ras_reg(sim, Reg::RasLastAddr), 0x2000u);
  EXPECT_EQ(ras_reg(sim, Reg::RasLastStat),
            static_cast<u64>(ErrStat::DramDbe));

  // Overwriting the poisoned word heals it.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x2000, 3, 0,
                               {0x3333, 0x4444}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x2000, 4),
            Status::Ok);
  const auto healed = test::await_response(sim, 0, 0);
  ASSERT_TRUE(healed.has_value());
  EXPECT_NE(healed->cmd, Command::Error);
}

TEST(DramEcc, InjectionRatesProduceFaultsDeterministically) {
  const auto run_counts = [](u64 seed) {
    DeviceConfig dc = ras_device();
    dc.dram_sbe_rate_ppm = 400'000;
    dc.dram_dbe_rate_ppm = 100'000;
    dc.fault_seed = seed;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 1500;
    dcfg.max_cycles = 500000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 1500u);
    const DeviceStats s = sim.total_stats();
    EXPECT_GT(s.dram_sbes, 0u);
    EXPECT_GT(s.dram_dbes, 0u);
    return s.dram_sbes * 1'000'000 + s.dram_dbes;
  };
  EXPECT_EQ(run_counts(7), run_counts(7));
  EXPECT_NE(run_counts(7), run_counts(8));
}

TEST(Scrubber, FindsLatentWriteFaults) {
  DeviceConfig dc = ras_device();
  dc.dram_sbe_rate_ppm = 1'000'000;  // every write plants a latent flip
  dc.scrub_interval_cycles = 8;
  // scrub_span's cost scales with the faults inside the window, not its
  // size, so a capacity/16 window finishes a full pass in 16 steps.
  dc.scrub_window_bytes = dc.derived_capacity() / 16;
  Simulator sim = test::make_simple_sim(dc);

  // Plant latent faults via normal write traffic, then let the scrubber
  // sweep the whole address space past them.
  for (Tag t = 0; t < 16; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, t % 4, Command::Wr16, 0x40 * t, t,
                                 0, {t, t}),
              Status::Ok);
  }
  (void)test::drain_all(sim, 500);
  EXPECT_GT(sim.device(0).store.fault_count(), 0u);

  // Two full passes: 16 windows x 8-cycle interval each.
  for (int i = 0; i < 400; ++i) sim.clock();
  const DeviceStats s = sim.stats(0);
  EXPECT_GT(s.scrub_steps, 0u);
  EXPECT_GT(s.scrub_corrections, 0u);
  EXPECT_EQ(sim.device(0).store.fault_count(), 0u);

  // Scrub progress register: corrected count in RAS_SBE[63:32], cursor
  // page in RAS_SCRUB[31:0].
  EXPECT_EQ(ras_reg(sim, Reg::RasSbe) >> 32, s.scrub_corrections);
  EXPECT_NE(ras_reg(sim, Reg::RasScrub), 0u);
}

TEST(Scrubber, IdleDeviceScrubsWithoutSideEffects) {
  DeviceConfig dc = ras_device();
  dc.scrub_interval_cycles = 4;
  Simulator sim = test::make_simple_sim(dc);
  for (int i = 0; i < 100; ++i) sim.clock();
  const DeviceStats s = sim.stats(0);
  EXPECT_GT(s.scrub_steps, 0u);
  EXPECT_EQ(s.scrub_corrections, 0u);
  EXPECT_EQ(s.scrub_uncorrectables, 0u);
  EXPECT_TRUE(sim.quiescent());
  EXPECT_FALSE(sim.watchdog_fired());  // scrubbing is not forward progress
}

TEST(VaultDegradation, StaticMaskErrorsWithoutRemap) {
  DeviceConfig dc = ras_device();
  dc.failed_vault_mask = 0x1;  // vault 0 down from cycle 0
  Simulator sim = test::make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();

  // Find addresses landing in vault 0 and in a healthy vault.
  PhysAddr dead = 0, alive = 0;
  bool have_dead = false, have_alive = false;
  for (PhysAddr a = 0; a < (1u << 16) && !(have_dead && have_alive);
       a += 16) {
    if (map.vault_of(a) == 0 && !have_dead) { dead = a; have_dead = true; }
    if (map.vault_of(a) == 1 && !have_alive) { alive = a; have_alive = true; }
  }
  ASSERT_TRUE(have_dead && have_alive);

  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, dead, 1),
            Status::Ok);
  const auto rsp = test::await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::VaultFailed);
  EXPECT_EQ(sim.stats(0).degraded_drops, 1u);

  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, alive, 2),
            Status::Ok);
  const auto ok_rsp = test::await_response(sim, 0, 0);
  ASSERT_TRUE(ok_rsp.has_value());
  EXPECT_NE(ok_rsp->cmd, Command::Error);

  EXPECT_EQ(ras_reg(sim, Reg::RasVaultFail) & 0xffffffffu, 0x1u);
}

TEST(VaultDegradation, RemapRedirectsToPartnerVault) {
  DeviceConfig dc = ras_device();
  dc.failed_vault_mask = 0x1;
  dc.vault_remap = true;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 1000u);
  EXPECT_EQ(r.errors, 0u);  // partner vault absorbs the traffic
  const DeviceStats s = sim.total_stats();
  EXPECT_GT(s.vault_remaps, 0u);
  EXPECT_EQ(s.degraded_drops, 0u);
  EXPECT_EQ(ras_reg(sim, Reg::RasVaultFail) >> 32, s.vault_remaps);
}

TEST(VaultDegradation, UncorrectableThresholdFailsVaultDynamically) {
  DeviceConfig dc = ras_device();
  dc.vault_fail_threshold = 3;
  Simulator sim = test::make_simple_sim(dc);

  // Three poisoned reads of the same vault trip the threshold; later
  // requests die at the crossbar with VAULT_FAILED.
  for (Tag t = 1; t <= 5; ++t) {
    const PhysAddr addr = 0x4000;
    if (t <= 3) {
      ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, addr, 100 + t,
                                   0, {t, t}),
                Status::Ok);
      ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
      const std::array<u32, 2> bits = {2, 30};
      ASSERT_TRUE(sim.device(0).store.plant_fault(addr, bits));
    }
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, addr, t),
              Status::Ok);
    const auto rsp = test::await_response(sim, 0, 0);
    ASSERT_TRUE(rsp.has_value());
    EXPECT_EQ(rsp->cmd, Command::Error);
    EXPECT_EQ(rsp->errstat,
              t <= 3 ? ErrStat::DramDbe : ErrStat::VaultFailed);
  }
  EXPECT_EQ(sim.stats(0).vault_failures, 1u);
  EXPECT_NE(sim.device(0).ras.failed_vaults, 0u);
  EXPECT_FALSE(sim.device(0).vault_alive(
      sim.device(0).address_map().vault_of(0x4000)));
}

TEST(Conservation, EveryRequestTerminatesUnderFullFaultRates) {
  // 100% DBE + transient link errors + a statically failed vault + the
  // watchdog armed: every request must still terminate (data or error)
  // and the watchdog must never fire.
  DeviceConfig dc = ras_device();
  dc.dram_sbe_rate_ppm = 500'000;
  dc.dram_dbe_rate_ppm = 500'000;  // every access rolls a fault
  dc.link_error_rate_ppm = 100'000;
  dc.failed_vault_mask = 0x2;
  dc.scrub_interval_cycles = 32;
  dc.watchdog_cycles = 20'000;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 1'000'000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_FALSE(r.hit_cycle_cap);
  EXPECT_FALSE(r.watchdog_fired);
  EXPECT_FALSE(sim.watchdog_fired());
  EXPECT_GT(r.errors, 0u);
  const DeviceStats s = sim.total_stats();
  EXPECT_GT(s.dram_dbes, 0u);
  EXPECT_GT(s.degraded_drops, 0u);
}

TEST(Conservation, AllVaultsFailedStillAnswersEverything) {
  DeviceConfig dc = ras_device();
  dc.failed_vault_mask = 0xffff;  // all 16 vaults down
  dc.watchdog_cycles = 20'000;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 500;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 500u);
  EXPECT_EQ(r.errors, 500u);  // every single one dies with VAULT_FAILED
  EXPECT_FALSE(r.watchdog_fired);
}

TEST(Watchdog, FiresWhenTheHostStopsDraining) {
  // Saturate the device and never recv: responses back up until nothing
  // can move, which is exactly the no-forward-progress condition.
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 200;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 200; ++t) {
    (void)test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t);
  }
  for (int i = 0; i < 20'000 && !sim.watchdog_fired(); ++i) sim.clock();
  ASSERT_TRUE(sim.watchdog_fired());
  EXPECT_FALSE(sim.watchdog_report().empty());
  // The report names queue occupancies and in-flight work.
  EXPECT_NE(sim.watchdog_report().find("cycle"), std::string::npos);

  // A fired watchdog freezes the machine: further clocks are refused.
  const Cycle frozen = sim.now();
  sim.clock();
  sim.clock();
  EXPECT_EQ(sim.now(), frozen);
}

TEST(Watchdog, NeverFiresUnderNormalLoad) {
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 1000;
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 3000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 3000u);
  EXPECT_FALSE(r.watchdog_fired);
  EXPECT_FALSE(sim.watchdog_fired());
  EXPECT_TRUE(sim.watchdog_report().empty());
}

TEST(Watchdog, ResetRearmsIt) {
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 100;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 100; ++t) {
    (void)test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t);
  }
  for (int i = 0; i < 10'000 && !sim.watchdog_fired(); ++i) sim.clock();
  ASSERT_TRUE(sim.watchdog_fired());
  sim.reset();
  EXPECT_FALSE(sim.watchdog_fired());
  EXPECT_TRUE(sim.watchdog_report().empty());
  // The machine clocks again after reset.
  const Cycle before = sim.now();
  sim.clock();
  EXPECT_EQ(sim.now(), before + 1);
}

TEST(RasConfig, ValidationRejectsBadKnobs) {
  // DRAM fault injection requires the data store.
  DeviceConfig dc = small_device();
  dc.model_data = false;
  dc.dram_sbe_rate_ppm = 100;
  Simulator sim;
  std::string diag;
  EXPECT_NE(sim.init_simple(dc, &diag), Status::Ok);

  // Failed-vault mask must stay within the vault count.
  DeviceConfig dc2 = ras_device();
  dc2.failed_vault_mask = u64{1} << 20;  // only 16 vaults exist
  Simulator sim2;
  EXPECT_NE(sim2.init_simple(dc2, &diag), Status::Ok);

  // Scrub window must be a nonzero multiple of 16 when scrubbing is on.
  DeviceConfig dc3 = ras_device();
  dc3.scrub_interval_cycles = 64;
  dc3.scrub_window_bytes = 24;
  Simulator sim3;
  EXPECT_NE(sim3.init_simple(dc3, &diag), Status::Ok);
}

}  // namespace
}  // namespace hmcsim
