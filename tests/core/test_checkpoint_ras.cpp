// Checkpoint v3: RAS state (fault sidecar, fault RNG, scrub cursor, failed
// vaults, watchdog) and host retry state survive a save/restore, and a
// resumed run matches the uninterrupted one counter-for-counter.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

DeviceConfig ras_device() {
  DeviceConfig dc = small_device();
  dc.model_data = true;
  dc.dram_sbe_rate_ppm = 300'000;
  dc.dram_dbe_rate_ppm = 60'000;
  dc.scrub_interval_cycles = 16;
  dc.scrub_window_bytes = 4096;
  dc.vault_fail_threshold = 6;
  dc.vault_remap = true;
  dc.watchdog_cycles = 30'000;
  return dc;
}

DriverConfig driver_cfg() {
  DriverConfig dcfg;
  dcfg.total_requests = 800;
  dcfg.max_cycles = 500000;
  dcfg.response_timeout_cycles = 5;  // near p50: a mix of hits and timeouts
  dcfg.retry_limit = 5;
  dcfg.retry_backoff_cycles = 8;
  return dcfg;
}

void expect_same_stats(const DeviceStats& a, const DeviceStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.error_responses, b.error_responses);
  EXPECT_EQ(a.dram_sbes, b.dram_sbes);
  EXPECT_EQ(a.dram_dbes, b.dram_dbes);
  EXPECT_EQ(a.scrub_steps, b.scrub_steps);
  EXPECT_EQ(a.scrub_corrections, b.scrub_corrections);
  EXPECT_EQ(a.scrub_uncorrectables, b.scrub_uncorrectables);
  EXPECT_EQ(a.vault_failures, b.vault_failures);
  EXPECT_EQ(a.vault_remaps, b.vault_remaps);
  EXPECT_EQ(a.degraded_drops, b.degraded_drops);
}

TEST(CheckpointRas, RasStateSurvivesRoundTrip) {
  // Build a simulator with planted faults, a failed vault, and scrub
  // progress; the restored copy must mirror all of it.
  DeviceConfig dc = ras_device();
  dc.failed_vault_mask = 0x4;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 24; ++t) {
    (void)test::send_request(sim, 0, t % 4, Command::Wr16, 0x40 * t, t, 0,
                             {t, t});
  }
  for (int i = 0; i < 120; ++i) sim.clock();  // mid-flight, scrubs pending
  const std::array<u32, 2> bits = {4, 44};
  ASSERT_TRUE(sim.device(0).store.plant_fault(0x8000, bits));

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);

  EXPECT_EQ(restored.now(), sim.now());
  EXPECT_EQ(restored.device(0).ras.failed_vaults,
            sim.device(0).ras.failed_vaults);
  EXPECT_EQ(restored.device(0).ras.scrub_cursor,
            sim.device(0).ras.scrub_cursor);
  EXPECT_EQ(restored.device(0).ras.scrub_passes,
            sim.device(0).ras.scrub_passes);
  EXPECT_EQ(restored.device(0).store.fault_count(),
            sim.device(0).store.fault_count());
  EXPECT_GT(restored.device(0).store.fault_count(), 0u);
  expect_same_stats(restored.stats(0), sim.stats(0));
  EXPECT_FALSE(restored.watchdog_fired());

  // Both copies must keep evolving identically: same scrub discoveries,
  // same injected faults (fault RNG state restored).
  for (int i = 0; i < 2000; ++i) {
    sim.clock();
    restored.clock();
  }
  expect_same_stats(restored.stats(0), sim.stats(0));
  EXPECT_EQ(restored.device(0).store.fault_count(),
            sim.device(0).store.fault_count());
}

TEST(CheckpointRas, ResumedRunMatchesUninterrupted) {
  // Full-stack determinism: faults + scrubbing + vault degradation + host
  // timeouts/retries, interrupted mid-run by a checkpoint of both the
  // simulator and the driver.
  const DeviceConfig dc = ras_device();
  const DriverConfig dcfg = driver_cfg();
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();

  Simulator sim_ref = test::make_simple_sim(dc);
  RandomAccessGenerator gen_ref(gc);
  HostDriver driver_ref(sim_ref, gen_ref, dcfg);
  const DriverResult r_ref = driver_ref.run();
  EXPECT_EQ(r_ref.completed, dcfg.total_requests);
  EXPECT_FALSE(r_ref.watchdog_fired);

  Simulator sim_a = test::make_simple_sim(dc);
  RandomAccessGenerator gen_a(gc);
  HostDriver driver_a(sim_a, gen_a, dcfg);
  DriverResult r_mid;
  // 800 requests take >64 cycles to inject, so 40 steps is mid-run.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(driver_a.step(r_mid));
  }
  std::stringstream sim_stream, driver_stream;
  ASSERT_EQ(sim_a.save_checkpoint(sim_stream), Status::Ok);
  ASSERT_EQ(driver_a.save(driver_stream), Status::Ok);

  Simulator sim_b;
  ASSERT_EQ(sim_b.restore_checkpoint(sim_stream), Status::Ok);
  RandomAccessGenerator gen_b(gc);
  HostDriver driver_b(sim_b, gen_b, dcfg);
  ASSERT_EQ(driver_b.restore(driver_stream), Status::Ok);

  DriverResult r_b = r_mid;
  while (driver_b.step(r_b)) {
  }
  EXPECT_EQ(r_b.completed, r_ref.completed);
  EXPECT_EQ(r_b.sent, r_ref.sent);
  EXPECT_EQ(r_b.errors, r_ref.errors);
  EXPECT_EQ(r_b.timeouts, r_ref.timeouts);
  EXPECT_EQ(r_b.retries, r_ref.retries);
  EXPECT_EQ(r_b.abandoned, r_ref.abandoned);
  EXPECT_EQ(r_b.cycles, r_ref.cycles);
  expect_same_stats(sim_b.total_stats(), sim_ref.total_stats());
}

TEST(CheckpointRas, FiredWatchdogRoundTrips) {
  DeviceConfig dc = small_device();
  dc.watchdog_cycles = 150;
  Simulator sim = test::make_simple_sim(dc);
  for (Tag t = 0; t < 100; ++t) {
    (void)test::send_request(sim, 0, t % 4, Command::Rd16, 64 * t, t);
  }
  for (int i = 0; i < 10'000 && !sim.watchdog_fired(); ++i) sim.clock();
  ASSERT_TRUE(sim.watchdog_fired());

  std::stringstream stream;
  ASSERT_EQ(sim.save_checkpoint(stream), Status::Ok);
  Simulator restored;
  ASSERT_EQ(restored.restore_checkpoint(stream), Status::Ok);
  EXPECT_TRUE(restored.watchdog_fired());
  EXPECT_FALSE(restored.watchdog_report().empty());
  const Cycle frozen = restored.now();
  restored.clock();
  EXPECT_EQ(restored.now(), frozen);  // still refuses to clock
}

}  // namespace
}  // namespace hmcsim
