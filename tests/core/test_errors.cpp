// Error response generation: deliberate misconfigurations and bad requests
// surface as in-band ERROR packets with descriptive ERRSTAT codes (paper
// §IV requirement 2: misconfigured topologies produce error responses, not
// crashes).
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::make_simple_sim;
using test::send_request;
using test::small_device;

TEST(Errors, AddressBeyondCapacity) {
  Simulator sim = make_simple_sim();
  const u64 cap = sim.device(0).store.capacity();  // 2 GB; ADRS is 34 bits
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd64, cap + 64, 1), Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::InvalidAddress);
  EXPECT_EQ(rsp->tag, 1u);
  EXPECT_EQ(sim.stats(0).error_responses, 1u);
  EXPECT_EQ(sim.stats(0).reads, 0u);
}

TEST(Errors, AccessStraddlingCapacityEnd) {
  // The base address is in range but the 128-byte footprint spills past the
  // end of the device: the vault rejects it.
  Simulator sim = make_simple_sim();
  const u64 cap = sim.device(0).store.capacity();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd128, cap - 64, 1), Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::InvalidAddress);
}

TEST(Errors, NonexistentCubeIsUnroutable) {
  // Single device, request addressed to cube 5: no route exists, so an
  // in-band error response comes back (the send itself succeeds — the
  // misconfiguration is discovered inside the device, as the paper
  // prescribes).
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 9, /*cub=*/5),
            Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::Unroutable);
  EXPECT_EQ(rsp->tag, 9u);
  EXPECT_EQ(sim.stats(0).misroutes, 1u);
}

TEST(Errors, UnreachablePeerCubeIsUnroutable) {
  // Two devices, deliberately NOT chained: cube 1 exists but has no path.
  SimConfig sc;
  sc.num_devices = 2;
  sc.device = small_device();
  Topology topo(2, 4);
  (void)topo.connect_host(CubeId{0}, LinkId{0});
  (void)topo.connect_host(CubeId{1}, LinkId{0});  // own host port, no chain
  ASSERT_EQ(topo.finalize(), Status::Ok);
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 3, /*cub=*/1),
            Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::Unroutable);
}

TEST(Errors, ModeAccessToBogusRegister) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_moderequest(0, /*phys_reg=*/0x123456, 4, /*write=*/false, 0,
                              0, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::RegisterFault);
}

TEST(Errors, ModeWriteToReadOnlyRegister) {
  Simulator sim = make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_moderequest(0, phys_from_reg(Reg::Rvid), 5, /*write=*/true,
                              0xBAD, 0, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::Error);
  EXPECT_EQ(rsp->errstat, ErrStat::RegisterFault);
  // The register is untouched.
  u64 v = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Rvid), v), Status::Ok);
  EXPECT_NE(v, 0xBADu);
}

TEST(Errors, ErrorsDoNotOccupyBanks) {
  // A burst of unroutable requests must not consume bank bandwidth: a
  // subsequent valid read completes with its usual latency.
  Simulator sim = make_simple_sim();
  for (Tag t = 0; t < 6; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, t, /*cub=*/6),
              Status::Ok);
  }
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 100), Status::Ok);
  const auto responses = test::drain_all(sim);
  ASSERT_EQ(responses.size(), 7u);
  int errors = 0, reads = 0;
  for (const auto& r : responses) {
    if (r.cmd == Command::Error) ++errors;
    if (r.cmd == Command::ReadResponse) ++reads;
  }
  EXPECT_EQ(errors, 6);
  EXPECT_EQ(reads, 1);
}

TEST(Errors, ErrorResponseRoutesToInjectionLink) {
  Simulator sim = make_simple_sim();
  ASSERT_EQ(send_request(sim, 0, 3, Command::Rd16, 0x40, 2, /*cub=*/4),
            Status::Ok);
  for (int i = 0; i < 30; ++i) sim.clock();
  PacketBuffer pkt;
  EXPECT_EQ(sim.recv(0, 0, pkt), Status::NoResponse);
  EXPECT_EQ(sim.recv(0, 3, pkt), Status::Ok);
}

TEST(Errors, MixedValidAndInvalidBatchesBothComplete) {
  Simulator sim = make_simple_sim();
  const u64 cap = sim.device(0).store.capacity();
  u64 sent = 0;
  for (Tag t = 0; t < 20; ++t) {
    const PhysAddr addr = (t % 2 == 0) ? (64 * t) : (cap + 64 * t);
    // In-range requests succeed; out-of-range addresses above 2^34 cannot
    // even encode, so keep them inside the 34-bit field.
    const PhysAddr clamped = addr & spec::kAddrMask;
    if (ok(send_request(sim, 0, t % 4, Command::Rd16, clamped, t))) ++sent;
  }
  const auto responses = test::drain_all(sim);
  EXPECT_EQ(responses.size(), sent);
}

}  // namespace
}  // namespace hmcsim
