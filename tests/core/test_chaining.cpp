// Multi-device chaining: routed requests, response return paths, hop
// latency, and the child/root stage split.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::send_request;
using test::small_device;

Simulator make_chain_sim(u32 devices, u32 host_links = 2,
                         u32 trunk_links = 1) {
  SimConfig sc;
  sc.num_devices = devices;
  sc.device = small_device();
  std::string err;
  Topology topo = make_chain(devices, 4, host_links, trunk_links, &err);
  EXPECT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init(sc, std::move(topo), &diag), Status::Ok) << diag;
  return sim;
}

TEST(Chaining, RequestToChildCubeCompletes) {
  Simulator sim = make_chain_sim(2);
  // Address cube 1 through the root (cube 0).
  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x1000, 1, /*cub=*/1,
                         {0xCAFE, 0}),
            Status::Ok);
  auto rsp = await_response(sim, 0, 0);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->cmd, Command::WriteResponse);
  EXPECT_EQ(rsp->cub, 1u);  // responding device is the child

  // The data landed in cube 1's storage, not cube 0's.
  u64 word = 0;
  ASSERT_TRUE(sim.device(1).store.read_words(0x1000, {&word, 1}));
  EXPECT_EQ(word, 0xCAFEu);
  ASSERT_TRUE(sim.device(0).store.read_words(0x1000, {&word, 1}));
  EXPECT_EQ(word, 0u);
  EXPECT_GT(sim.stats(0).route_hops, 0u);
}

TEST(Chaining, DeeperCubesHaveHigherLatency) {
  Simulator sim = make_chain_sim(4);
  std::array<Cycle, 4> latency{};
  for (u32 cub = 0; cub < 4; ++cub) {
    const Cycle start = sim.now();
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40,
                           static_cast<Tag>(cub), cub),
              Status::Ok);
    auto rsp = await_response(sim, 0, 0, 500);
    ASSERT_TRUE(rsp.has_value()) << "cube " << cub;
    EXPECT_EQ(rsp->cub, cub);
    latency[cub] = sim.now() - start;
  }
  // Each extra chain hop costs cycles on both the request and response
  // paths, so latency must be strictly increasing down the chain.
  EXPECT_LT(latency[0], latency[1]);
  EXPECT_LT(latency[1], latency[2]);
  EXPECT_LT(latency[2], latency[3]);
}

TEST(Chaining, ReadYourWritesThroughTheChain) {
  Simulator sim = make_chain_sim(3);
  for (u32 cub = 0; cub < 3; ++cub) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x2000, 1, cub,
                           {u64{0x1110} + cub, 0}),
              Status::Ok);
    ASSERT_TRUE(await_response(sim, 0, 0, 500).has_value());
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x2000, 2, cub),
              Status::Ok);
    PacketBuffer raw;
    auto rsp = await_response(sim, 0, 0, 500, &raw);
    ASSERT_TRUE(rsp.has_value());
    EXPECT_EQ(raw.payload()[0], 0x1110 + cub) << "cube " << cub;
  }
}

TEST(Chaining, MixedTrafficToAllCubesCompletes) {
  Simulator sim = make_chain_sim(4);
  u64 sent = 0;
  for (Tag t = 0; t < 64; ++t) {
    const Status s = send_request(sim, 0, t % 2, Command::Rd16,
                                  64 * (t % 16), t, /*cub=*/t % 4);
    if (ok(s)) {
      ++sent;
    } else {
      ASSERT_EQ(s, Status::Stalled);
      sim.clock();
    }
  }
  const auto responses = test::drain_all(sim, 3000);
  EXPECT_EQ(responses.size(), sent);
  // Traffic flowed through every device.
  for (u32 d = 1; d < 4; ++d) {
    EXPECT_GT(sim.stats(d).reads, 0u) << "device " << d;
  }
}

TEST(Chaining, RingTopologyRoutesBothDirections) {
  SimConfig sc;
  sc.num_devices = 4;
  sc.device = small_device();
  std::string err;
  Topology topo = make_ring(4, 4, /*host_links=*/2, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  // Cube 1 (clockwise) and cube 3 (counterclockwise) are both one hop out;
  // cube 2 is two hops either way.
  std::array<Cycle, 4> latency{};
  for (u32 cub = 0; cub < 4; ++cub) {
    const Cycle start = sim.now();
    ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40,
                           static_cast<Tag>(cub), cub),
              Status::Ok);
    ASSERT_TRUE(await_response(sim, 0, 0, 500).has_value()) << cub;
    latency[cub] = sim.now() - start;
  }
  EXPECT_EQ(latency[1], latency[3]);  // symmetric one-hop neighbors
  EXPECT_GT(latency[2], latency[1]);  // the far node costs more
}

TEST(Chaining, WideTrunkCarriesMoreTraffic) {
  // Two parallel trunk links between two cubes double the forwarding
  // bandwidth; a saturating burst to the child completes in fewer cycles.
  auto run = [](u32 trunk_links) {
    SimConfig sc;
    sc.num_devices = 2;
    DeviceConfig dc = small_device();
    dc.xbar_depth = 64;
    dc.xbar_flits_per_cycle = 4;  // make the trunk the bottleneck
    sc.device = dc;
    std::string err;
    Topology topo = make_chain(2, 4, /*host_links=*/2, trunk_links, &err);
    EXPECT_GT(topo.num_devices(), 0u) << err;
    Simulator sim;
    EXPECT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

    u64 completed = 0, sent = 0;
    PacketBuffer pkt;
    while (completed < 64) {
      while (sent < 64) {
        const Status s = test::send_request(
            sim, 0, static_cast<u32>(sent % 2), Command::Rd16,
            64 * (sent % 32), static_cast<Tag>(sent), /*cub=*/1);
        if (s == Status::Stalled) break;
        EXPECT_EQ(s, Status::Ok);
        ++sent;
      }
      for (u32 l = 0; l < 2; ++l) {
        while (ok(sim.recv(0, l, pkt))) ++completed;
      }
      sim.clock();
      EXPECT_LT(sim.now(), 5000u);
    }
    return sim.now();
  };
  const Cycle narrow = run(1);
  const Cycle wide = run(2);
  EXPECT_LT(wide, narrow);
}

TEST(Chaining, ChildStatsAttributeWorkCorrectly) {
  Simulator sim = make_chain_sim(2);
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0, 1, /*cub=*/1),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0, 500).has_value());
  EXPECT_EQ(sim.stats(0).reads, 0u);   // root only forwarded
  EXPECT_EQ(sim.stats(1).reads, 1u);   // child did the memory work
  EXPECT_EQ(sim.stats(0).route_hops, 1u);
  EXPECT_EQ(sim.stats(0).sends, 1u);   // host edge is on the root
  EXPECT_EQ(sim.stats(1).sends, 0u);
}

}  // namespace
}  // namespace hmcsim
