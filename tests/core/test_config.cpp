#include "core/config.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TEST(DeviceConfig, DefaultIsValid) {
  DeviceConfig dc;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::Ok) << diag;
}

TEST(DeviceConfig, DerivedGeometry) {
  DeviceConfig dc;
  dc.num_links = 4;
  dc.banks_per_vault = 8;
  EXPECT_EQ(dc.num_vaults(), 16u);
  EXPECT_EQ(dc.num_quads(), 4u);
  EXPECT_EQ(dc.derived_capacity(), u64{2} << 30);
  dc.num_links = 8;
  dc.banks_per_vault = 16;
  EXPECT_EQ(dc.num_vaults(), 32u);
  EXPECT_EQ(dc.derived_capacity(), u64{8} << 30);
}

TEST(DeviceConfig, RejectsBadLinkCount) {
  DeviceConfig dc;
  dc.num_links = 6;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("num_links"), std::string::npos);
}

TEST(DeviceConfig, RejectsBadBankCount) {
  DeviceConfig dc;
  dc.banks_per_vault = 12;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, RejectsZeroQueueDepths) {
  DeviceConfig dc;
  dc.xbar_depth = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc = DeviceConfig{};
  dc.vault_depth = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, RejectsBadBlockSize) {
  DeviceConfig dc;
  dc.max_block_bytes = 48;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  for (const u64 good : {32u, 64u, 128u, 256u}) {
    dc.max_block_bytes = good;
    EXPECT_EQ(dc.validate(), Status::Ok) << good;
  }
}

TEST(DeviceConfig, CapacityCrossCheck) {
  DeviceConfig dc;  // 4-link/8-bank => 2 GB
  dc.capacity_bytes = u64{2} << 30;
  EXPECT_EQ(dc.validate(), Status::Ok);
  dc.capacity_bytes = u64{4} << 30;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("capacity"), std::string::npos);
}

TEST(DeviceConfig, RejectsZeroTimingParams) {
  DeviceConfig dc;
  dc.bank_busy_cycles = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc = DeviceConfig{};
  dc.xbar_flits_per_cycle = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, LinkProtocolKnobRanges) {
  auto proto = [] {
    DeviceConfig dc;
    dc.link_protocol = true;
    dc.link_retry_limit = 8;
    return dc;
  };
  EXPECT_EQ(proto().validate(), Status::Ok);

  // The spec retry machine always replays: a zero retry budget is
  // meaningless with the protocol on.
  DeviceConfig dc = proto();
  dc.link_retry_limit = 0;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("link_retry_limit"), std::string::npos);

  // The retry buffer must hold one maximal packet and fit the 8-bit FRP.
  dc = proto();
  dc.link_retry_buffer_flits = spec::kMaxPacketFlits - 1;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc.link_retry_buffer_flits = 257;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);

  // Token pool: 0 = auto, otherwise at least one maximal packet.
  dc = proto();
  dc.link_tokens = spec::kMaxPacketFlits - 1;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc.link_tokens = spec::kMaxPacketFlits;
  EXPECT_EQ(dc.validate(), Status::Ok);

  dc = proto();
  dc.link_retry_latency = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc.link_retry_latency = 4097;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);

  // Burst length and the stuck-link schedule have shape constraints of
  // their own.
  dc = proto();
  dc.link_error_burst_len = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc.link_error_burst_len = 65;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);

  dc = proto();
  dc.link_stuck_interval_cycles = 64;
  dc.link_stuck_window_cycles = 64;  // window must be < interval
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc.link_stuck_window_cycles = 8;
  EXPECT_EQ(dc.validate(), Status::Ok);
  dc.link_stuck_window_cycles = 0;  // interval without a window
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, LinkProtocolKnobsRequireTheProtocol) {
  // The sub-knobs are meaningless with the protocol off; silently ignoring
  // them would hide a configuration mistake.
  for (int knob = 0; knob < 4; ++knob) {
    DeviceConfig dc;
    switch (knob) {
      case 0: dc.link_tokens = 32; break;
      case 1: dc.link_error_burst_len = 4; break;
      case 2:
        dc.link_stuck_interval_cycles = 64;
        dc.link_stuck_window_cycles = 8;
        break;
      default: dc.link_fail_threshold = 2; break;
    }
    std::string diag;
    EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig) << "knob " << knob;
    EXPECT_NE(diag.find("link_protocol"), std::string::npos) << diag;
  }
}

TEST(DeviceConfig, WatchdogMustOutlastLinkRecovery) {
  DeviceConfig dc;
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  dc.link_retry_latency = 32;
  dc.link_stuck_interval_cycles = 256;
  dc.link_stuck_window_cycles = 16;
  dc.watchdog_cycles = 48;  // == latency + window: misreads recovery
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("watchdog_cycles"), std::string::npos);
  dc.watchdog_cycles = 49;
  EXPECT_EQ(dc.validate(), Status::Ok);
}

TEST(DeviceConfig, AddressMapModesAllBuild) {
  for (const auto mode : {AddrMapMode::LowInterleave, AddrMapMode::BankFirst,
                          AddrMapMode::Linear}) {
    DeviceConfig dc;
    dc.map_mode = mode;
    EXPECT_EQ(dc.validate(), Status::Ok);
    EXPECT_TRUE(dc.make_address_map().valid());
  }
}

TEST(SimConfig, RejectsTooManyDevices) {
  // The 3-bit CUB field reserves ids above the device count for hosts.
  SimConfig sc;
  sc.num_devices = 8;
  std::string diag;
  EXPECT_EQ(sc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("CUB"), std::string::npos);
  sc.num_devices = 7;
  EXPECT_EQ(sc.validate(), Status::Ok);
  sc.num_devices = 0;
  EXPECT_EQ(sc.validate(), Status::InvalidConfig);
}

TEST(SimConfig, HostCubIsAboveDevices) {
  SimConfig sc;
  sc.num_devices = 3;
  EXPECT_EQ(sc.host_cub(), 3u);
}

TEST(Table1Configs, MatchThePaper) {
  // The four §VI configurations: 4/8 links x 8/16 banks, 2..8 GB.
  const auto a = table1_config_4link_8bank();
  EXPECT_EQ(a.num_links, 4u);
  EXPECT_EQ(a.banks_per_vault, 8u);
  EXPECT_EQ(a.capacity_bytes, u64{2} << 30);
  EXPECT_EQ(a.xbar_depth, 128u);  // 128 crossbar arbitration slots
  EXPECT_EQ(a.vault_depth, 64u);  // 64 vault arbitration slots
  EXPECT_EQ(a.validate(), Status::Ok);

  const auto b = table1_config_4link_16bank();
  EXPECT_EQ(b.capacity_bytes, u64{4} << 30);
  EXPECT_EQ(b.validate(), Status::Ok);

  const auto c = table1_config_8link_8bank();
  EXPECT_EQ(c.num_links, 8u);
  EXPECT_EQ(c.capacity_bytes, u64{4} << 30);
  EXPECT_EQ(c.validate(), Status::Ok);

  const auto d = table1_config_8link_16bank();
  EXPECT_EQ(d.capacity_bytes, u64{8} << 30);
  EXPECT_EQ(d.num_vaults(), 32u);
  EXPECT_EQ(d.validate(), Status::Ok);
}

}  // namespace
}  // namespace hmcsim
