#include "core/config.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TEST(DeviceConfig, DefaultIsValid) {
  DeviceConfig dc;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::Ok) << diag;
}

TEST(DeviceConfig, DerivedGeometry) {
  DeviceConfig dc;
  dc.num_links = 4;
  dc.banks_per_vault = 8;
  EXPECT_EQ(dc.num_vaults(), 16u);
  EXPECT_EQ(dc.num_quads(), 4u);
  EXPECT_EQ(dc.derived_capacity(), u64{2} << 30);
  dc.num_links = 8;
  dc.banks_per_vault = 16;
  EXPECT_EQ(dc.num_vaults(), 32u);
  EXPECT_EQ(dc.derived_capacity(), u64{8} << 30);
}

TEST(DeviceConfig, RejectsBadLinkCount) {
  DeviceConfig dc;
  dc.num_links = 6;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("num_links"), std::string::npos);
}

TEST(DeviceConfig, RejectsBadBankCount) {
  DeviceConfig dc;
  dc.banks_per_vault = 12;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, RejectsZeroQueueDepths) {
  DeviceConfig dc;
  dc.xbar_depth = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc = DeviceConfig{};
  dc.vault_depth = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, RejectsBadBlockSize) {
  DeviceConfig dc;
  dc.max_block_bytes = 48;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  for (const u64 good : {32u, 64u, 128u, 256u}) {
    dc.max_block_bytes = good;
    EXPECT_EQ(dc.validate(), Status::Ok) << good;
  }
}

TEST(DeviceConfig, CapacityCrossCheck) {
  DeviceConfig dc;  // 4-link/8-bank => 2 GB
  dc.capacity_bytes = u64{2} << 30;
  EXPECT_EQ(dc.validate(), Status::Ok);
  dc.capacity_bytes = u64{4} << 30;
  std::string diag;
  EXPECT_EQ(dc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("capacity"), std::string::npos);
}

TEST(DeviceConfig, RejectsZeroTimingParams) {
  DeviceConfig dc;
  dc.bank_busy_cycles = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
  dc = DeviceConfig{};
  dc.xbar_flits_per_cycle = 0;
  EXPECT_EQ(dc.validate(), Status::InvalidConfig);
}

TEST(DeviceConfig, AddressMapModesAllBuild) {
  for (const auto mode : {AddrMapMode::LowInterleave, AddrMapMode::BankFirst,
                          AddrMapMode::Linear}) {
    DeviceConfig dc;
    dc.map_mode = mode;
    EXPECT_EQ(dc.validate(), Status::Ok);
    EXPECT_TRUE(dc.make_address_map().valid());
  }
}

TEST(SimConfig, RejectsTooManyDevices) {
  // The 3-bit CUB field reserves ids above the device count for hosts.
  SimConfig sc;
  sc.num_devices = 8;
  std::string diag;
  EXPECT_EQ(sc.validate(&diag), Status::InvalidConfig);
  EXPECT_NE(diag.find("CUB"), std::string::npos);
  sc.num_devices = 7;
  EXPECT_EQ(sc.validate(), Status::Ok);
  sc.num_devices = 0;
  EXPECT_EQ(sc.validate(), Status::InvalidConfig);
}

TEST(SimConfig, HostCubIsAboveDevices) {
  SimConfig sc;
  sc.num_devices = 3;
  EXPECT_EQ(sc.host_cub(), 3u);
}

TEST(Table1Configs, MatchThePaper) {
  // The four §VI configurations: 4/8 links x 8/16 banks, 2..8 GB.
  const auto a = table1_config_4link_8bank();
  EXPECT_EQ(a.num_links, 4u);
  EXPECT_EQ(a.banks_per_vault, 8u);
  EXPECT_EQ(a.capacity_bytes, u64{2} << 30);
  EXPECT_EQ(a.xbar_depth, 128u);  // 128 crossbar arbitration slots
  EXPECT_EQ(a.vault_depth, 64u);  // 64 vault arbitration slots
  EXPECT_EQ(a.validate(), Status::Ok);

  const auto b = table1_config_4link_16bank();
  EXPECT_EQ(b.capacity_bytes, u64{4} << 30);
  EXPECT_EQ(b.validate(), Status::Ok);

  const auto c = table1_config_8link_8bank();
  EXPECT_EQ(c.num_links, 8u);
  EXPECT_EQ(c.capacity_bytes, u64{4} << 30);
  EXPECT_EQ(c.validate(), Status::Ok);

  const auto d = table1_config_8link_16bank();
  EXPECT_EQ(d.capacity_bytes, u64{8} << 30);
  EXPECT_EQ(d.num_vaults(), 32u);
  EXPECT_EQ(d.validate(), Status::Ok);
}

}  // namespace
}  // namespace hmcsim
