// DRAM refresh model: staggered per-vault refresh windows (tREFI/tRFC)
// take banks offline without losing or reordering any traffic.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(Refresh, DisabledByDefault) {
  Simulator sim = test::make_simple_sim();
  for (int i = 0; i < 200; ++i) sim.clock();
  EXPECT_EQ(sim.total_stats().refreshes, 0u);
}

TEST(Refresh, IssuesAtTheConfiguredRate) {
  DeviceConfig dc = small_device();
  dc.refresh_interval_cycles = 100;
  dc.refresh_busy_cycles = 10;
  Simulator sim = test::make_simple_sim(dc);
  for (int i = 0; i < 1000; ++i) sim.clock();
  // 16 vaults x ~10 intervals each.
  EXPECT_NEAR(static_cast<double>(sim.total_stats().refreshes), 160.0, 16.0);
}

TEST(Refresh, StaggeringSpreadsVaultWindows) {
  // With the stagger, vault 0 and vault 8 must refresh at different cycles
  // (offset = vault * interval / vaults).
  DeviceConfig dc = small_device();
  dc.refresh_interval_cycles = 160;  // 10-cycle stagger across 16 vaults
  dc.refresh_busy_cycles = 4;
  Simulator sim = test::make_simple_sim(dc);
  sim.clock();  // cycle 0: vault 0 refreshes (offset 0)
  const Cycle v0_busy = sim.device(0).vaults[0].bank_busy_until[0];
  const Cycle v8_busy = sim.device(0).vaults[8].bank_busy_until[0];
  EXPECT_GT(v0_busy, 0u);
  EXPECT_EQ(v8_busy, 0u);  // vault 8's slot is 80 cycles later
  for (int i = 0; i < 81; ++i) sim.clock();
  EXPECT_GT(sim.device(0).vaults[8].bank_busy_until[0], 0u);
}

TEST(Refresh, RequestsWaitOutTheRefreshWindow) {
  DeviceConfig dc = small_device();
  dc.refresh_interval_cycles = 1000;  // vault 0 refreshes at cycle 0
  dc.refresh_busy_cycles = 50;
  dc.bank_busy_cycles = 2;
  Simulator sim = test::make_simple_sim(dc);
  // Address in vault 0: the read must wait for the refresh to finish.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0, 1), Status::Ok);
  const auto rsp = test::await_response(sim, 0, 0, 200);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_GE(sim.now(), 50u);  // could not retire before the window closed
  EXPECT_EQ(rsp->cmd, Command::ReadResponse);
}

TEST(Refresh, ConservationUnderRefreshPressure) {
  DeviceConfig dc = small_device();
  dc.refresh_interval_cycles = 64;
  dc.refresh_busy_cycles = 16;  // heavy: 25% duty cycle
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(sim.total_stats().refreshes, 0u);
}

TEST(Refresh, OverheadScalesWithDutyCycle) {
  const auto run_cycles = [](u32 interval, u32 busy) {
    DeviceConfig dc = small_device();
    dc.refresh_interval_cycles = interval;
    dc.refresh_busy_cycles = busy;
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 4000;
    dcfg.max_cycles = 1000000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.completed, 4000u);
    return r.cycles;
  };
  const Cycle none = run_cycles(0, 0);
  const Cycle light = run_cycles(1000, 50);   // ~5% duty
  const Cycle heavy = run_cycles(100, 50);    // ~50% duty
  EXPECT_GT(light, none);
  EXPECT_GT(heavy, light);
  // Half the bank time gone should roughly double the runtime.
  EXPECT_GT(static_cast<double>(heavy) / static_cast<double>(none), 1.5);
}

}  // namespace
}  // namespace hmcsim
