// Live status registers: FEAT geometry discovery, IBTC token counts, ERR
// error totals — readable over both the JTAG and MODE_READ paths.
#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(LiveRegisters, FeatEncodesGeometry) {
  Simulator sim = test::make_simple_sim();  // 4-link/8-bank/2GB
  u64 feat = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Feat), feat), Status::Ok);
  EXPECT_EQ(feat & 0xff, 2u);            // capacity GB
  EXPECT_EQ((feat >> 8) & 0xf, 4u);      // links
  EXPECT_EQ((feat >> 12) & 0xff, 8u);    // banks per vault
  EXPECT_EQ((feat >> 20) & 0xff, 16u);   // vaults

  DeviceConfig dc = small_device();
  dc.num_links = 8;
  dc.banks_per_vault = 16;
  Simulator big = test::make_simple_sim(dc);
  ASSERT_EQ(big.jtag_reg_read(0, phys_from_reg(Reg::Feat), feat), Status::Ok);
  EXPECT_EQ(feat & 0xff, 8u);
  EXPECT_EQ((feat >> 8) & 0xf, 8u);
  EXPECT_EQ((feat >> 12) & 0xff, 16u);
  EXPECT_EQ((feat >> 20) & 0xff, 32u);
}

TEST(LiveRegisters, IbtcTracksFreeQueueSlots) {
  DeviceConfig dc = small_device();
  dc.xbar_depth = 8;
  Simulator sim = test::make_simple_sim(dc);
  u64 tokens = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Ibtc0), tokens),
            Status::Ok);
  EXPECT_EQ(tokens, 8u);  // empty queue: all tokens available

  for (Tag t = 0; t < 3; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 64 * t, t),
              Status::Ok);
  }
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Ibtc0), tokens),
            Status::Ok);
  EXPECT_EQ(tokens, 5u);  // three slots consumed
  // Other links untouched.
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Ibtc1), tokens),
            Status::Ok);
  EXPECT_EQ(tokens, 8u);

  (void)test::drain_all(sim);
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Ibtc0), tokens),
            Status::Ok);
  EXPECT_EQ(tokens, 8u);  // tokens returned after the queue drained
}

TEST(LiveRegisters, ErrCountsErrorResponses) {
  Simulator sim = test::make_simple_sim();
  u64 err = 1;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Err), err), Status::Ok);
  EXPECT_EQ(err, 0u);

  // Unroutable cube -> one error response.
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1, /*cub=*/5),
            Status::Ok);
  (void)test::drain_all(sim);
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Err), err), Status::Ok);
  EXPECT_EQ(err & 0xffffffffu, 1u);
  EXPECT_EQ(err >> 32, 0u);  // no injected link errors
}

TEST(LiveRegisters, ErrHighWordCountsInjectedLinkErrors) {
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 1'000'000;
  Simulator sim = test::make_simple_sim(dc);
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1),
            Status::Ok);
  (void)test::drain_all(sim);
  u64 err = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Err), err), Status::Ok);
  EXPECT_EQ(err >> 32, 1u);
}

TEST(LiveRegisters, InBandModeReadSeesTheSameLiveValues) {
  Simulator sim = test::make_simple_sim();
  PacketBuffer pkt;
  ASSERT_EQ(build_moderequest(0, phys_from_reg(Reg::Feat), 1, false, 0, 0,
                              pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  PacketBuffer raw;
  const auto rsp = test::await_response(sim, 0, 0, 100, &raw);
  ASSERT_TRUE(rsp.has_value());
  ASSERT_EQ(rsp->cmd, Command::ModeReadResponse);
  u64 jtag_value = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Feat), jtag_value),
            Status::Ok);
  EXPECT_EQ(raw.payload()[0], jtag_value);
}

TEST(LiveRegisters, LiveValuesAreStillWriteProtected) {
  Simulator sim = test::make_simple_sim();
  EXPECT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Feat), 0),
            Status::ReadOnlyRegister);
  EXPECT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Err), 0),
            Status::ReadOnlyRegister);
  // IBTC registers are architected RW; a write lands in backing storage but
  // reads remain live.
  ASSERT_EQ(sim.jtag_reg_write(0, phys_from_reg(Reg::Ibtc0), 3), Status::Ok);
  u64 tokens = 0;
  ASSERT_EQ(sim.jtag_reg_read(0, phys_from_reg(Reg::Ibtc0), tokens),
            Status::Ok);
  EXPECT_EQ(tokens, sim.config().device.xbar_depth);
}

}  // namespace
}  // namespace hmcsim
