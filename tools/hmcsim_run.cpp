// hmcsim_run — the generic experiment runner.
//
// Wraps the whole stack into one CLI: load a device configuration, pick a
// workload, run it, and print a human summary plus (optionally) the full
// JSON report and Figure-5 CSV — everything a scripting pipeline needs
// without writing C++.
//
// Usage:
//   hmcsim_run [options]
//     --config <file>       key=value device config (see core/config_file.hpp)
//     --preset a|b|c|d      Table I configuration (default: a)
//     --topology <spec>     simple (default) | chain:N | ring:N | mesh:RxC
//                           | torus:RxC  (multi-cube runs spread requests
//                           round-robin across every cube)
//     --workload <name>     random|stream|stride|hotspot|chase|trace
//     --trace-in <file>     request trace for --workload trace
//     --requests <n>        request count (default 2^18)
//     --read-fraction <f>   read mix (default 0.5)
//     --request-bytes <n>   block size (default 64)
//     --policy rr|local     injection policy (default rr)
//     --json <file|->       write the JSON report ('-' = stdout)
//     --fig5-csv <file>     write the per-vault Figure-5 series CSV
//     --trace-out <file>    write the full text trace (level 2)
//     --chrome-trace <file> write a Chrome trace-event JSON (about:tracing)
//     --metrics-interval <n> sample queue occupancies/stalls every n cycles
//     --metrics-csv <file>  write the metric samples as CSV
//     --seed <n>            generator seed (default 1)
//     --threads <n>         clock-engine worker threads (0 = all cores;
//                           results are bit-identical for every value)
//
//   RAS / fault injection (see docs/RAS.md):
//     --dram-sbe-ppm <n>    single-bit DRAM fault odds per access, ppm
//     --dram-dbe-ppm <n>    double-bit DRAM fault odds per access, ppm
//     --scrub-interval <n>  background scrub step every n cycles
//     --scrub-window <n>    bytes scanned per scrub step (default 4096)
//     --vault-fail-threshold <n>  uncorrectables before a vault fails
//     --failed-vaults <mask>      vaults failed from cycle 0 (bitmask)
//     --vault-remap 0|1     remap failed-vault traffic to the partner vault
//     --watchdog <n>        fail fast after n cycles without progress
//     --link-error-ppm <n>  transient link error odds per packet, ppm
//     --link-retry-limit <n>      link-level retry budget
//
//   Link reliability protocol (see docs/LINK_LAYER.md):
//     --link-protocol 0|1   spec retry buffers / tokens / IRTRY recovery
//     --link-tokens <n>     receiver token pool, FLITs (0 = auto)
//     --link-retry-latency <n>    error-abort retraining window, cycles
//     --link-burst <n>      consecutive packets hit per injected error
//     --link-stuck-interval <n>   periodic retraining interval, cycles
//     --link-stuck-window <n>     retraining window inside the interval
//     --link-fail-threshold <n>   retry exhaustions before a link dies
//     --timeout <n>         host response timeout, cycles
//     --retries <n>         host resend budget per timed-out request
//     --backoff <n>         host backoff before the first resend, cycles
//
//   Vault timing backends (see docs/BACKENDS.md):
//     --backend <name>      device-wide bank-timing model:
//                           hmc_dram (default) | generic_ddr | pcm_like
//     --vault-backend <i:name>    per-vault override, repeatable; wins
//                           over any config-file vault_backend entry
//     --ddr-tcl <n>         generic_ddr column latency, cycles
//     --ddr-trcd <n>        generic_ddr RAS-to-CAS delay, cycles
//     --ddr-trp <n>         generic_ddr precharge, cycles
//     --ddr-tras <n>        generic_ddr row-active minimum, cycles
//     --pcm-read <n>        pcm_like read occupancy, cycles
//     --pcm-write <n>       pcm_like write occupancy, cycles
//     --pcm-write-gap <n>   pcm_like vault-wide write throttle gap, cycles
//
//   Crash-consistent checkpointing (see docs/FORMATS.md §5):
//     --checkpoint-dir <dir>      write rotated checkpoint generations
//                           (ckpt-<gen>.bin) into <dir>; each write is
//                           atomic (temp + fsync + rename)
//     --checkpoint-interval <n>   cycles between generations (default:
//                           the config checkpoint_interval_cycles, else
//                           10000 when --checkpoint-dir is given)
//     --checkpoint-keep <n> generations retained (default 3; 0 = all)
//     --resume              scan --checkpoint-dir newest-first, restore
//                           the first valid generation (falling back past
//                           torn/corrupt files), and continue the run
//                           bit-identical to one that was never
//                           interrupted.  An empty/missing directory
//                           starts fresh.
//
//   Observability (see docs/OBSERVABILITY.md):
//     --profile             self-profile the clock engine; print the
//                           per-stage wall-time table after the summary
//     --telemetry-interval <n>    sample queue/token/tag occupancy
//                           high-water marks and histograms every n cycles
//     --flight-recorder <file>    dump the flight-recorder event ring as
//                           text at exit (enables a 256-deep ring if
//                           --flight-recorder-depth is not given)
//     --flight-recorder-chrome <file>  ditto, as Chrome trace-event JSON
//     --flight-recorder-depth <n>      per-device ring capacity, events
//     --wedge-vaults <mask> mark every bank of the masked vaults busy
//                           forever (deterministic stall injection for
//                           watchdog / flight-recorder testing); the mask
//                           must not name vaults beyond the configured
//                           vault count
//
//   Chaos orchestration (see docs/CHAOS.md):
//     --chaos-plan <file>   arm a deterministic fault campaign (at/every/
//                           ramp/storm/quiet directives); events fire from
//                           the clock loop at exact cycles, bit-identical
//                           for every thread count and with fast-forward
//     --chaos-invariants <n>      run the live invariant suite every n
//                           cycles (defaults to 1024 when a plan is armed;
//                           0 disables)
//     --chaos-shrink <file> after an invariant violation, ddmin the plan to
//                           a minimal reproducer tripping the same
//                           invariant at the same cycle and write it here
//
//   Every option also accepts the --flag=value spelling; numeric values are
//   parsed strictly (trailing junk is a usage error).
//
//   Exit status: 0 success, 1 incomplete run, 2 usage error, 3 watchdog
//   fired (diagnostic dump on stderr, including link-protocol state and
//   the flight-recorder tail when enabled), 4 --resume found checkpoints
//   but none restored cleanly, 5 a periodic checkpoint write failed,
//   6 a chaos invariant violation froze the machine (post-mortem dump on
//   stderr; the shrunken reproducer is written when --chaos-shrink is
//   given).
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "analysis/sampler.hpp"
#include "chaos/plan.hpp"
#include "chaos/shrink.hpp"
#include "core/config_file.hpp"
#include "core/simulator.hpp"
#include "io/failpoint.hpp"
#include "trace/chrome.hpp"
#include "trace/lifecycle.hpp"
#include "trace/series.hpp"
#include "workload/driver.hpp"
#include "workload/trace_file.hpp"

using namespace hmcsim;

namespace {

struct Args {
  std::string config_file;
  char preset = 'a';
  std::string topology = "simple";
  std::string workload = "random";
  std::string trace_in;
  u64 requests = u64{1} << 18;
  double read_fraction = 0.5;
  u32 request_bytes = 64;
  InjectionPolicy policy = InjectionPolicy::RoundRobin;
  std::string json_out;
  std::string fig5_csv;
  std::string trace_out;
  std::string chrome_trace;
  std::string metrics_csv;
  u64 metrics_interval = 0;
  u32 seed = 1;
  i64 threads = -1;  ///< -1: leave the config file's sim_threads value
  bool no_fast_forward = false;  ///< disable the idle-cycle fast path
  // RAS / fault injection; -1 sentinels mean "leave the config file value".
  i64 dram_sbe_ppm = -1;
  i64 dram_dbe_ppm = -1;
  i64 scrub_interval = -1;
  i64 scrub_window = -1;
  i64 vault_fail_threshold = -1;
  i64 failed_vaults = -1;
  i64 vault_remap = -1;
  i64 watchdog = -1;
  i64 link_error_ppm = -1;
  i64 link_retry_limit = -1;
  i64 link_protocol = -1;
  i64 link_tokens = -1;
  i64 link_retry_latency = -1;
  i64 link_burst = -1;
  i64 link_stuck_interval = -1;
  i64 link_stuck_window = -1;
  i64 link_fail_threshold = -1;
  // Timing backend selection (docs/BACKENDS.md); empty = config value.
  std::string backend;
  std::vector<std::string> vault_backends;  ///< repeatable "idx:name"
  i64 ddr_tcl = -1;
  i64 ddr_trcd = -1;
  i64 ddr_trp = -1;
  i64 ddr_tras = -1;
  i64 pcm_read = -1;
  i64 pcm_write = -1;
  i64 pcm_write_gap = -1;
  u64 timeout = 0;
  u32 retries = 0;
  u64 backoff = 0;
  // Crash-consistent checkpointing.
  std::string checkpoint_dir;
  u64 checkpoint_interval = 0;  ///< 0: config value, else 10000 when dir set
  u64 checkpoint_keep = 3;      ///< generations retained (0 = keep all)
  bool resume = false;
  // Observability.
  bool profile = false;
  std::string flight_recorder_out;
  std::string flight_recorder_chrome;
  u64 flight_recorder_depth = 0;
  u64 telemetry_interval = 0;
  u64 wedge_vaults = 0;
  // Chaos orchestration (docs/CHAOS.md).
  std::string chaos_plan;
  std::string chaos_shrink;
  u64 chaos_invariants = 0;  ///< 0: default (1024 when a plan is armed)
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config FILE | --preset a|b|c|d] "
               "[--workload random|stream|stride|hotspot|chase|trace]\n"
               "       [--trace-in FILE] [--requests N] "
               "[--read-fraction F] [--request-bytes N]\n"
               "       [--policy rr|local] [--json FILE|-] "
               "[--fig5-csv FILE] [--trace-out FILE]\n"
               "       [--chrome-trace FILE] [--metrics-interval N] "
               "[--metrics-csv FILE] [--seed N] [--threads N] "
               "[--no-fast-forward]\n"
               "       [--profile] [--telemetry-interval N] "
               "[--flight-recorder FILE] [--flight-recorder-chrome FILE]\n"
               "       [--flight-recorder-depth N] [--wedge-vaults MASK]\n"
               "       [--backend hmc_dram|generic_ddr|pcm_like] "
               "[--vault-backend IDX:NAME]...\n"
               "       [--ddr-tcl N] [--ddr-trcd N] [--ddr-trp N] "
               "[--ddr-tras N]\n"
               "       [--pcm-read N] [--pcm-write N] [--pcm-write-gap N]\n"
               "       [--checkpoint-dir DIR] [--checkpoint-interval N] "
               "[--checkpoint-keep N] [--resume]\n"
               "       [--chaos-plan FILE] [--chaos-invariants N] "
               "[--chaos-shrink FILE]\n",
               argv0);
}

// Strict value parsing: the whole token must convert — no trailing junk, no
// silent negative-to-huge-unsigned wrap, no out-of-range values.  A typo'd
// value aborts the run instead of silently changing the experiment.
bool value_error(const std::string& flag, const char* v, const char* what) {
  std::fprintf(stderr, "error: option '%s' expects %s, got '%s'\n",
               flag.c_str(), what, v);
  return false;
}

bool parse_u64_strict(const std::string& flag, const char* v, u64& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 0);
  if (v[0] == '\0' || v[0] == '-' || end == v || *end != '\0' ||
      errno == ERANGE) {
    return value_error(flag, v, "an unsigned number");
  }
  out = parsed;
  return true;
}

bool parse_u32_strict(const std::string& flag, const char* v, u32& out) {
  u64 wide = 0;
  if (!parse_u64_strict(flag, v, wide)) return false;
  if (wide > 0xffffffffULL) return value_error(flag, v, "a 32-bit number");
  out = static_cast<u32>(wide);
  return true;
}

bool parse_double_strict(const std::string& flag, const char* v, double& out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (v[0] == '\0' || end == v || *end != '\0' || errno == ERANGE) {
    return value_error(flag, v, "a number");
  }
  out = parsed;
  return true;
}

bool parse_args(int argc, char** argv, Args& args) {
  // Value-taking options, grouped by target type.  Both `--flag value` and
  // `--flag=value` are accepted; boolean switches reject an `=value` suffix.
  struct StrOpt { const char* flag; std::string Args::* field; };
  struct U64Opt { const char* flag; u64 Args::* field; };
  struct U32Opt { const char* flag; u32 Args::* field; };
  struct I64Opt { const char* flag; i64 Args::* field; };
  static constexpr StrOpt kStrOpts[] = {
      {"--config", &Args::config_file},
      {"--backend", &Args::backend},
      {"--topology", &Args::topology},
      {"--workload", &Args::workload},
      {"--trace-in", &Args::trace_in},
      {"--json", &Args::json_out},
      {"--fig5-csv", &Args::fig5_csv},
      {"--trace-out", &Args::trace_out},
      {"--chrome-trace", &Args::chrome_trace},
      {"--metrics-csv", &Args::metrics_csv},
      {"--flight-recorder", &Args::flight_recorder_out},
      {"--flight-recorder-chrome", &Args::flight_recorder_chrome},
      {"--checkpoint-dir", &Args::checkpoint_dir},
      {"--chaos-plan", &Args::chaos_plan},
      {"--chaos-shrink", &Args::chaos_shrink},
  };
  static constexpr U64Opt kU64Opts[] = {
      {"--requests", &Args::requests},
      {"--metrics-interval", &Args::metrics_interval},
      {"--timeout", &Args::timeout},
      {"--backoff", &Args::backoff},
      {"--telemetry-interval", &Args::telemetry_interval},
      {"--flight-recorder-depth", &Args::flight_recorder_depth},
      {"--wedge-vaults", &Args::wedge_vaults},
      {"--checkpoint-interval", &Args::checkpoint_interval},
      {"--checkpoint-keep", &Args::checkpoint_keep},
      {"--chaos-invariants", &Args::chaos_invariants},
  };
  static constexpr U32Opt kU32Opts[] = {
      {"--request-bytes", &Args::request_bytes},
      {"--seed", &Args::seed},
      {"--retries", &Args::retries},
  };
  // RAS / link overrides share the -1 "leave the config value" sentinel.
  static constexpr I64Opt kI64Opts[] = {
      {"--threads", &Args::threads},
      {"--dram-sbe-ppm", &Args::dram_sbe_ppm},
      {"--dram-dbe-ppm", &Args::dram_dbe_ppm},
      {"--scrub-interval", &Args::scrub_interval},
      {"--scrub-window", &Args::scrub_window},
      {"--vault-fail-threshold", &Args::vault_fail_threshold},
      {"--failed-vaults", &Args::failed_vaults},
      {"--vault-remap", &Args::vault_remap},
      {"--watchdog", &Args::watchdog},
      {"--link-error-ppm", &Args::link_error_ppm},
      {"--link-retry-limit", &Args::link_retry_limit},
      {"--link-protocol", &Args::link_protocol},
      {"--link-tokens", &Args::link_tokens},
      {"--link-retry-latency", &Args::link_retry_latency},
      {"--link-burst", &Args::link_burst},
      {"--link-stuck-interval", &Args::link_stuck_interval},
      {"--link-stuck-window", &Args::link_stuck_window},
      {"--link-fail-threshold", &Args::link_fail_threshold},
      {"--ddr-tcl", &Args::ddr_tcl},
      {"--ddr-trcd", &Args::ddr_trcd},
      {"--ddr-trp", &Args::ddr_trp},
      {"--ddr-tras", &Args::ddr_tras},
      {"--pcm-read", &Args::pcm_read},
      {"--pcm-write", &Args::pcm_write},
      {"--pcm-write-gap", &Args::pcm_write_gap},
  };

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (flag.size() > 2 && flag.compare(0, 2, "--") == 0) {
      const auto eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }

    // Boolean switches.
    if (flag == "--no-fast-forward" || flag == "--profile" ||
        flag == "--resume") {
      if (has_inline) {
        std::fprintf(stderr, "error: option '%s' takes no value\n",
                     flag.c_str());
        return false;
      }
      if (flag == "--no-fast-forward") {
        args.no_fast_forward = true;
      } else if (flag == "--profile") {
        args.profile = true;
      } else {
        args.resume = true;
      }
      continue;
    }

    // Fetch the value for a value-taking option; null means it is missing.
    const auto take_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: option '%s' requires a value\n",
                     flag.c_str());
        usage(argv[0]);
        return nullptr;
      }
      return argv[++i];
    };

    bool handled = false;
    for (const StrOpt& opt : kStrOpts) {
      if (flag != opt.flag) continue;
      const char* v = take_value();
      if (v == nullptr) return false;
      args.*opt.field = v;
      handled = true;
      break;
    }
    if (handled) continue;
    for (const U64Opt& opt : kU64Opts) {
      if (flag != opt.flag) continue;
      const char* v = take_value();
      if (v == nullptr || !parse_u64_strict(flag, v, args.*opt.field)) {
        return false;
      }
      handled = true;
      break;
    }
    if (handled) continue;
    for (const U32Opt& opt : kU32Opts) {
      if (flag != opt.flag) continue;
      const char* v = take_value();
      if (v == nullptr || !parse_u32_strict(flag, v, args.*opt.field)) {
        return false;
      }
      handled = true;
      break;
    }
    if (handled) continue;
    for (const I64Opt& opt : kI64Opts) {
      if (flag != opt.flag) continue;
      const char* v = take_value();
      u64 parsed = 0;
      if (v == nullptr || !parse_u64_strict(flag, v, parsed)) return false;
      if (parsed > static_cast<u64>(INT64_MAX)) {
        return value_error(flag, v, "a smaller number");
      }
      args.*opt.field = static_cast<i64>(parsed);
      handled = true;
      break;
    }
    if (handled) continue;

    if (flag == "--vault-backend") {
      // Repeatable; each occurrence adds one "<vault>:<name>" override.
      const char* v = take_value();
      if (v == nullptr) return false;
      args.vault_backends.emplace_back(v);
      continue;
    }
    if (flag == "--preset") {
      const char* v = take_value();
      if (v == nullptr) return false;
      if (std::strlen(v) != 1) return value_error(flag, v, "one of a|b|c|d");
      args.preset = static_cast<char>(std::tolower(v[0]));
      continue;
    }
    if (flag == "--policy") {
      const char* v = take_value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "local") == 0) {
        args.policy = InjectionPolicy::LocalityAware;
      } else if (std::strcmp(v, "rr") == 0) {
        args.policy = InjectionPolicy::RoundRobin;
      } else {
        return value_error(flag, v, "rr or local");
      }
      continue;
    }
    if (flag == "--read-fraction") {
      const char* v = take_value();
      if (v == nullptr || !parse_double_strict(flag, v, args.read_fraction)) {
        return false;
      }
      continue;
    }

    // An unrecognized option is a hard error so typos cannot silently
    // change an experiment.
    std::fprintf(stderr, "error: unknown option '%s'\n", flag.c_str());
    usage(argv[0]);
    return false;
  }
  return true;
}

std::unique_ptr<Generator> make_generator(const Args& args,
                                          const DeviceConfig& dc) {
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = args.request_bytes;
  gc.read_fraction = args.read_fraction;
  gc.seed = args.seed;
  if (args.workload == "random") {
    return std::make_unique<RandomAccessGenerator>(gc);
  }
  if (args.workload == "stream") {
    return std::make_unique<StreamGenerator>(gc);
  }
  if (args.workload == "stride") {
    return std::make_unique<StrideGenerator>(gc, 4096 + 64);
  }
  if (args.workload == "hotspot") {
    return std::make_unique<HotspotGenerator>(gc, 0.9, u64{1} << 20);
  }
  if (args.workload == "chase") {
    return std::make_unique<PointerChaseGenerator>(gc);
  }
  if (args.workload == "trace") {
    std::ifstream in(args.trace_in);
    if (!in) {
      std::fprintf(stderr, "cannot open trace %s\n", args.trace_in.c_str());
      return nullptr;
    }
    auto gen = std::make_unique<TraceFileGenerator>(in);
    if (gen->malformed_lines() != 0) {
      // Strict by policy: a malformed line means the trace is not what the
      // user thinks it is, so name the first offender and refuse to run.
      std::fprintf(stderr, "%s:%llu: %s (%llu malformed line%s total)\n",
                   args.trace_in.c_str(),
                   static_cast<unsigned long long>(gen->first_error_line()),
                   gen->first_error().c_str(),
                   static_cast<unsigned long long>(gen->malformed_lines()),
                   gen->malformed_lines() == 1 ? "" : "s");
      return nullptr;
    }
    if (!gen->valid()) {
      std::fprintf(stderr, "trace %s holds no requests\n",
                   args.trace_in.c_str());
      return nullptr;
    }
    return gen;
  }
  std::fprintf(stderr, "unknown workload '%s'\n", args.workload.c_str());
  return nullptr;
}

/// Build the requested topology; empty (num_devices() == 0) on failure with
/// the reason in `diag`.  Factored out so the chaos shrinker's oracle can
/// rebuild an identical topology for every candidate replay.
Topology build_topology(const Args& args, const DeviceConfig& dc,
                        std::string* diag) {
  const std::string& spec = args.topology;
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  u32 n = 0, rows = 0, cols = 0;
  if (colon != std::string::npos) {
    const std::string dims = spec.substr(colon + 1);
    const auto x = dims.find('x');
    if (x != std::string::npos) {
      rows = static_cast<u32>(std::strtoul(dims.c_str(), nullptr, 0));
      cols = static_cast<u32>(std::strtoul(dims.c_str() + x + 1, nullptr, 0));
    } else {
      n = static_cast<u32>(std::strtoul(dims.c_str(), nullptr, 0));
    }
  }
  const u32 links = dc.num_links;
  if (kind == "simple") return make_simple(links, diag);
  if (kind == "chain") return make_chain(n, links, 2, 1, diag);
  if (kind == "ring") return make_ring(n, links, 2, diag);
  if (kind == "mesh") return make_mesh(rows, cols, links, 2, diag);
  if (kind == "torus") return make_torus2d(rows, cols, links, 2, diag);
  if (diag != nullptr) *diag = "unknown topology '" + spec + "'";
  return Topology{};
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;
  if (args.resume && args.checkpoint_dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir\n");
    usage(argv[0]);
    return 2;
  }
  // HMCSIM_FAILPOINT=<short|enospc|eio|crash>:<bytes> makes checkpoint-write
  // failure modes reproducible out of process (the CI crash harness).
  io::arm_failpoint_from_env();

  // ---- configuration -------------------------------------------------------
  SimConfig config;
  if (!args.config_file.empty()) {
    std::ifstream in(args.config_file);
    if (!in) {
      std::fprintf(stderr, "cannot open config %s\n",
                   args.config_file.c_str());
      return 1;
    }
    const ConfigParseResult parsed = parse_config(in);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s:%s\n", args.config_file.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    config = parsed.config;
  } else {
    switch (args.preset) {
      case 'a': config.device = table1_config_4link_8bank(); break;
      case 'b': config.device = table1_config_4link_16bank(); break;
      case 'c': config.device = table1_config_8link_8bank(); break;
      case 'd': config.device = table1_config_8link_16bank(); break;
      default:
        std::fprintf(stderr, "unknown preset '%c'\n", args.preset);
        return 1;
    }
    config.device.model_data = false;
  }

  // ---- chaos plan -----------------------------------------------------------
  ChaosPlan chaos_plan;
  const bool chaos_armed = !args.chaos_plan.empty();
  if (!args.chaos_shrink.empty() && !chaos_armed) {
    std::fprintf(stderr, "error: --chaos-shrink requires --chaos-plan\n");
    usage(argv[0]);
    return 2;
  }
  if (chaos_armed) {
    std::ifstream in(args.chaos_plan);
    if (!in) {
      std::fprintf(stderr, "cannot open chaos plan %s\n",
                   args.chaos_plan.c_str());
      return 2;
    }
    ChaosPlanParseResult parsed = parse_chaos_plan(in);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s:%s\n", args.chaos_plan.c_str(),
                   parsed.error.c_str());
      return 2;
    }
    chaos_plan = std::move(parsed.plan);
  }

  // ---- RAS overrides --------------------------------------------------------
  {
    DeviceConfig& dc = config.device;
    if (args.dram_sbe_ppm >= 0) {
      dc.dram_sbe_rate_ppm = static_cast<u32>(args.dram_sbe_ppm);
    }
    if (args.dram_dbe_ppm >= 0) {
      dc.dram_dbe_rate_ppm = static_cast<u32>(args.dram_dbe_ppm);
    }
    if (args.scrub_interval >= 0) {
      dc.scrub_interval_cycles = static_cast<u32>(args.scrub_interval);
    }
    if (args.scrub_window >= 0) {
      dc.scrub_window_bytes = static_cast<u64>(args.scrub_window);
    }
    if (args.vault_fail_threshold >= 0) {
      dc.vault_fail_threshold = static_cast<u32>(args.vault_fail_threshold);
    }
    if (args.failed_vaults >= 0) {
      dc.failed_vault_mask = static_cast<u64>(args.failed_vaults);
    }
    if (args.vault_remap >= 0) dc.vault_remap = args.vault_remap != 0;
    if (args.watchdog >= 0) {
      dc.watchdog_cycles = static_cast<u32>(args.watchdog);
    }
    if (args.link_error_ppm >= 0) {
      dc.link_error_rate_ppm = static_cast<u32>(args.link_error_ppm);
    }
    if (args.link_retry_limit >= 0) {
      dc.link_retry_limit = static_cast<u32>(args.link_retry_limit);
    }
    if (args.link_protocol >= 0) dc.link_protocol = args.link_protocol != 0;
    if (args.link_tokens >= 0) {
      dc.link_tokens = static_cast<u32>(args.link_tokens);
    }
    if (args.link_retry_latency >= 0) {
      dc.link_retry_latency = static_cast<u32>(args.link_retry_latency);
    }
    if (args.link_burst >= 0) {
      dc.link_error_burst_len = static_cast<u32>(args.link_burst);
    }
    if (args.link_stuck_interval >= 0) {
      dc.link_stuck_interval_cycles =
          static_cast<u32>(args.link_stuck_interval);
    }
    if (args.link_stuck_window >= 0) {
      dc.link_stuck_window_cycles = static_cast<u32>(args.link_stuck_window);
    }
    if (args.link_fail_threshold >= 0) {
      dc.link_fail_threshold = static_cast<u32>(args.link_fail_threshold);
    }
    if (args.threads >= 0) dc.sim_threads = static_cast<u32>(args.threads);
    if (args.no_fast_forward) dc.fast_forward = false;
    // Checkpoint cadence: the flag wins over the config file value; a
    // --checkpoint-dir with neither falls back to every 10000 cycles.  An
    // execution knob like sim_threads — never serialized into checkpoints.
    if (args.checkpoint_interval != 0) {
      dc.checkpoint_interval_cycles = static_cast<u32>(
          std::min<u64>(args.checkpoint_interval, 0xffffffffULL));
    } else if (!args.checkpoint_dir.empty() &&
               dc.checkpoint_interval_cycles == 0) {
      dc.checkpoint_interval_cycles = 10000;
    }
    // Observability knobs (pure observation; see docs/OBSERVABILITY.md).
    if (args.profile) dc.self_profile = true;
    if (args.telemetry_interval != 0) {
      dc.telemetry_interval_cycles = static_cast<u32>(args.telemetry_interval);
    }
    if (args.flight_recorder_depth != 0) {
      dc.flight_recorder_depth = static_cast<u32>(args.flight_recorder_depth);
    }
    if ((!args.flight_recorder_out.empty() ||
         !args.flight_recorder_chrome.empty()) &&
        dc.flight_recorder_depth == 0) {
      dc.flight_recorder_depth = 256;  // a dump was asked for: default ring
    }
    // Chaos campaigns: the cadence defaults on when a plan is armed, and a
    // plan that retargets DRAM fault rates needs the data model present
    // (those injectors live in the data store).
    if (args.chaos_invariants != 0) {
      dc.chaos_invariants = static_cast<u32>(
          std::min<u64>(args.chaos_invariants, 0xffffffffULL));
    } else if (chaos_armed && dc.chaos_invariants == 0) {
      dc.chaos_invariants = 1024;
    }
    for (const ChaosEvent& ev : chaos_plan.events) {
      if (ev.action == ChaosAction::DramSbePpm ||
          ev.action == ChaosAction::DramDbePpm) {
        dc.model_data = true;
        break;
      }
    }
    // The DRAM fault domain lives in the data store; injection and
    // scrubbing need it present.
    if (dc.dram_sbe_rate_ppm != 0 || dc.dram_dbe_rate_ppm != 0 ||
        dc.scrub_interval_cycles != 0) {
      dc.model_data = true;
    }
    // Timing backend overrides (docs/BACKENDS.md).  The flags win over
    // config-file values; a --vault-backend replaces any file-supplied
    // override for the same vault.
    if (!args.backend.empty() &&
        !timing_backend_from_string(args.backend, &dc.timing_backend)) {
      std::fprintf(stderr,
                   "error: unknown --backend '%s' "
                   "(hmc_dram/generic_ddr/pcm_like)\n",
                   args.backend.c_str());
      return 2;
    }
    for (const std::string& spec : args.vault_backends) {
      const auto colon = spec.find(':');
      u64 vault = 0;
      TimingBackend backend;
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= spec.size() ||
          !parse_u64_strict("--vault-backend", spec.substr(0, colon).c_str(),
                            vault) ||
          vault >= 64 ||
          !timing_backend_from_string(spec.substr(colon + 1), &backend)) {
        std::fprintf(stderr,
                     "error: --vault-backend expects "
                     "<vault>:<hmc_dram|generic_ddr|pcm_like>, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      std::erase_if(dc.vault_backends, [&](const auto& e) {
        return e.first == static_cast<u32>(vault);
      });
      dc.vault_backends.emplace_back(static_cast<u32>(vault), backend);
    }
    if (args.ddr_tcl >= 0) dc.ddr_tcl = static_cast<u32>(args.ddr_tcl);
    if (args.ddr_trcd >= 0) dc.ddr_trcd = static_cast<u32>(args.ddr_trcd);
    if (args.ddr_trp >= 0) dc.ddr_trp = static_cast<u32>(args.ddr_trp);
    if (args.ddr_tras >= 0) dc.ddr_tras = static_cast<u32>(args.ddr_tras);
    if (args.pcm_read >= 0) {
      dc.pcm_read_cycles = static_cast<u32>(args.pcm_read);
    }
    if (args.pcm_write >= 0) {
      dc.pcm_write_cycles = static_cast<u32>(args.pcm_write);
    }
    if (args.pcm_write_gap >= 0) {
      dc.pcm_write_gap_cycles = static_cast<u32>(args.pcm_write_gap);
    }
  }

  // A wedge mask naming vaults beyond the configured count is a typo'd
  // experiment, not a quieter one — reject it before anything runs.
  if (args.wedge_vaults != 0) {
    const u32 nv = config.device.num_vaults();
    if (nv < 64 && (args.wedge_vaults >> nv) != 0) {
      std::fprintf(stderr,
                   "error: --wedge-vaults mask 0x%llx names vaults beyond "
                   "the configured %u\n",
                   static_cast<unsigned long long>(args.wedge_vaults), nv);
      return 2;
    }
  }

  // ---- topology -------------------------------------------------------------
  Simulator sim;
  std::string diag;
  Topology topo = build_topology(args, config.device, &diag);
  if (topo.num_devices() == 0) {
    std::fprintf(stderr, "topology build failed: %s\n", diag.c_str());
    return 1;
  }
  config.num_devices = topo.num_devices();
  if (!ok(sim.init(config, std::move(topo), &diag))) {
    std::fprintf(stderr, "init failed: %s\n", diag.c_str());
    return 1;
  }

  // ---- resume ---------------------------------------------------------------
  // Before any sinks attach: a restore rebuilds the device array, so wedge
  // injection and observers must come after it.  The restored checkpoint
  // keeps this invocation's execution knobs (threads, fast-forward, cadence).
  u64 resumed_gen = 0;
  bool resumed = false;
  std::string resumed_host_blob;
  if (args.resume) {
    CheckpointError rerr;
    const Status rst = resume_from_directory(
        sim, args.checkpoint_dir, &resumed_gen, &resumed_host_blob, &rerr);
    if (ok(rst)) {
      resumed = true;
    } else if (rst == Status::NoResponse) {
      std::fprintf(stderr, "resume: no checkpoints in %s; starting fresh\n",
                   args.checkpoint_dir.c_str());
    } else {
      std::fprintf(stderr, "resume failed: %s\n", rerr.message().c_str());
      return 4;
    }
  }

  // ---- chaos arming ---------------------------------------------------------
  // After a possible resume: re-passing the plan file against a restored
  // mid-campaign checkpoint is a CRC-verified no-op that keeps the cursor,
  // while a different plan is rejected instead of silently restarting.
  if (chaos_armed) {
    std::string cdiag;
    if (!ok(sim.set_chaos_plan(chaos_plan, &cdiag))) {
      std::fprintf(stderr, "%s: %s\n", args.chaos_plan.c_str(),
                   cdiag.c_str());
      return 2;
    }
  }

  if (args.wedge_vaults != 0) {
    // Deterministic stall injection: every bank of the masked vaults stays
    // busy forever (refresh only extends busy windows, never shortens them),
    // so their requests never retire and the watchdog must eventually fire.
    for (u32 d = 0; d < sim.num_devices(); ++d) {
      Device& dev = sim.device(d);
      for (u32 v = 0; v < config.device.num_vaults(); ++v) {
        if ((args.wedge_vaults >> v & 1) == 0) continue;
        for (Cycle& busy : dev.vaults[v].bank_busy_until) busy = ~Cycle{0};
      }
    }
  }

  // ---- sinks --------------------------------------------------------------
  std::shared_ptr<VaultSeriesSink> series;
  std::ofstream trace_file;
  if (!args.fig5_csv.empty() || !args.trace_out.empty()) {
    sim.tracer().set_level(TraceLevel::Events);
    if (!args.fig5_csv.empty()) {
      series = std::make_shared<VaultSeriesSink>(
          config.device.num_vaults(), 64);
      sim.tracer().add_sink(series);
    }
    if (!args.trace_out.empty()) {
      trace_file.open(args.trace_out);
      if (!trace_file) {
        std::fprintf(stderr, "cannot open %s\n", args.trace_out.c_str());
        return 1;
      }
      sim.tracer().add_sink(std::make_shared<TextSink>(trace_file));
    }
  }

  // The lifecycle sink is always on: it feeds the latency breakdown in
  // the summary and the JSON report, and costs O(1) memory.
  auto lifecycle = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(lifecycle);

  std::ofstream chrome_file;
  std::shared_ptr<ChromeTraceSink> chrome;
  if (!args.chrome_trace.empty()) {
    chrome_file.open(args.chrome_trace);
    if (!chrome_file) {
      std::fprintf(stderr, "cannot open %s\n", args.chrome_trace.c_str());
      return 1;
    }
    chrome = std::make_shared<ChromeTraceSink>(chrome_file);
    sim.add_lifecycle_observer(chrome);
  }

  MetricsSampler sampler;
  if (args.metrics_interval != 0) {
    sampler.attach(sim, args.metrics_interval);
  }

  // ---- workload -------------------------------------------------------------
  const std::unique_ptr<Generator> gen = make_generator(args, config.device);
  if (!gen) return 1;
  DriverConfig dcfg;
  dcfg.total_requests = args.requests;
  dcfg.policy = args.policy;
  if (sim.num_devices() > 1) dcfg.targets = TargetPolicy::RoundRobinCubes;
  dcfg.max_cycles = u64{4} * 1000 * 1000 * 1000;
  dcfg.response_timeout_cycles = args.timeout;
  dcfg.retry_limit = args.retries;
  dcfg.retry_backoff_cycles = args.backoff;
  HostDriver driver(sim, *gen, dcfg);
  DriverResult r;
  if (resumed) {
    if (!ok(restore_host_state(resumed_host_blob, driver, r))) {
      std::fprintf(stderr,
                   "resume failed: generation %llu has no usable host state\n",
                   static_cast<unsigned long long>(resumed_gen));
      return 4;
    }
    std::printf("resumed   : generation %llu at cycle %llu\n",
                static_cast<unsigned long long>(resumed_gen),
                static_cast<unsigned long long>(sim.now()));
  }

  // Chaos host-side wiring: host_timeout events retarget the driver's
  // response deadline, and the invariant suite gains the host tag-pool /
  // conservation probe.  Installed after the host-state restore so a live
  // override from a checkpointed campaign re-applies to this driver.
  if (ChaosEngine* chaos = sim.chaos()) {
    chaos->set_host_timeout_hook(
        [&driver](u64 cycles) { driver.set_response_timeout(cycles); },
        dcfg.response_timeout_cycles);
    chaos->set_host_probe([&driver, &r](std::string* detail) {
      return driver.invariants_ok(r, detail);
    });
  }

  // ---- drive ----------------------------------------------------------------
  const u64 ckpt_interval = args.checkpoint_dir.empty()
                                ? 0
                                : config.device.checkpoint_interval_cycles;
  if (ckpt_interval == 0) {
    while (driver.step(r)) {}
    driver.finish(r);
  } else {
    // Periodic generations: the trigger is "now() reached the next interval
    // boundary" rather than an exact modulus, so fast-forwarded cycles
    // cannot jump over it — and a resumed run recomputes the same boundary
    // from the restored cycle, keeping the generation sequence (numbering
    // and bytes) identical to a run that was never interrupted.
    std::error_code ec;
    std::filesystem::create_directories(args.checkpoint_dir, ec);
    u64 next_gen = resumed_gen + 1;
    if (!resumed) {
      // Continue numbering past any debris so rotation stays monotonic.
      const auto existing = list_checkpoint_generations(args.checkpoint_dir);
      next_gen = existing.empty() ? 0 : existing.back().gen + 1;
    }
    u64 next_ckpt = (sim.now() / ckpt_interval + 1) * ckpt_interval;
    bool write_failed = false;
    while (driver.step(r)) {
      if (sim.now() < next_ckpt) continue;
      CheckpointError werr;
      if (!ok(sim.save_checkpoint_file(
              checkpoint_generation_path(args.checkpoint_dir, next_gen),
              &werr, save_host_state(driver, r)))) {
        std::fprintf(stderr, "checkpoint write failed: %s\n",
                     werr.message().c_str());
        write_failed = true;
        break;
      }
      ++next_gen;
      prune_checkpoint_generations(
          args.checkpoint_dir,
          static_cast<u32>(std::min<u64>(args.checkpoint_keep, 0xffffffffULL)));
      next_ckpt = (sim.now() / ckpt_interval + 1) * ckpt_interval;
    }
    driver.finish(r);
    if (write_failed) return 5;
  }
  sim.tracer().flush();
  sim.flush_observability();

  // ---- report ---------------------------------------------------------------
  const DeviceStats s = sim.total_stats();
  std::printf("topology  : %s (%u cube%s)\n", args.topology.c_str(),
              sim.num_devices(), sim.num_devices() == 1 ? "" : "s");
  std::printf("workload  : %s x %llu (%u B, %.0f%% reads, %s)\n",
              gen->name(), static_cast<unsigned long long>(args.requests),
              args.request_bytes, args.read_fraction * 100,
              args.policy == InjectionPolicy::RoundRobin ? "round-robin"
                                                         : "locality-aware");
  std::printf("cycles    : %llu%s\n",
              static_cast<unsigned long long>(r.cycles),
              r.hit_cycle_cap ? "  (CYCLE CAP HIT)" : "");
  if (sim.cycles_skipped() != 0) {
    std::printf("skipped   : %llu idle cycles fast-forwarded (%.1f%%)\n",
                static_cast<unsigned long long>(sim.cycles_skipped()),
                100.0 * static_cast<double>(sim.cycles_skipped()) /
                    static_cast<double>(sim.now() == 0 ? 1 : sim.now()));
  }
  std::printf("completed : %llu (%llu errors)\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.errors));
  std::printf("latency   : mean %.1f  p50 %llu  p95 %llu  p99 %llu  "
              "max %llu\n",
              r.latency.mean(),
              static_cast<unsigned long long>(r.latency.percentile(0.50)),
              static_cast<unsigned long long>(r.latency.percentile(0.95)),
              static_cast<unsigned long long>(r.latency.percentile(0.99)),
              static_cast<unsigned long long>(r.latency.max));
  std::printf("bandwidth : %.1f GB/s of bank traffic at 1.25 GHz\n",
              effective_bandwidth_gbs(s.bytes_read + s.bytes_written,
                                      r.cycles));
  std::printf("contention: %llu conflicts, %llu xbar stalls, %llu latency "
              "events\n",
              static_cast<unsigned long long>(s.bank_conflicts),
              static_cast<unsigned long long>(s.xbar_rqst_stalls),
              static_cast<unsigned long long>(s.latency_penalties));
  if (s.dram_sbes + s.dram_dbes + s.scrub_corrections +
          s.scrub_uncorrectables + s.vault_failures + s.vault_remaps +
          s.degraded_drops + r.timeouts + r.retries + r.abandoned !=
      0) {
    std::printf("ras       : %llu sbe, %llu dbe, %llu scrubbed, "
                "%llu vault failures, %llu remaps, %llu drops\n",
                static_cast<unsigned long long>(s.dram_sbes),
                static_cast<unsigned long long>(s.dram_dbes),
                static_cast<unsigned long long>(s.scrub_corrections),
                static_cast<unsigned long long>(s.vault_failures),
                static_cast<unsigned long long>(s.vault_remaps),
                static_cast<unsigned long long>(s.degraded_drops));
    std::printf("host ras  : %llu timeouts, %llu retries, %llu abandoned\n",
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.abandoned));
  }
  if (lifecycle->completed() != 0) {
    std::printf("%s", format_latency_breakdown(*lifecycle).c_str());
  }
  if (args.profile) {
    std::printf("%s", format_profile_table(sim).c_str());
    const std::string tel = format_telemetry_table(sim);
    if (!tel.empty()) std::printf("\n%s", tel.c_str());
  }

  ReportExtras extras;
  extras.lifecycle = lifecycle.get();
  if (args.metrics_interval != 0) extras.sampler = &sampler;
  if (!args.json_out.empty()) {
    if (args.json_out == "-") {
      write_stats_json(std::cout, sim, {}, extras);
    } else {
      std::ofstream out(args.json_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", args.json_out.c_str());
        return 1;
      }
      write_stats_json(out, sim, {}, extras);
      std::printf("json      : %s\n", args.json_out.c_str());
    }
  }
  if (chrome) {
    chrome->finish();
    chrome_file.flush();
    std::printf("chrome    : %s (%llu packets)\n", args.chrome_trace.c_str(),
                static_cast<unsigned long long>(chrome->packets_emitted()));
  }
  if (!args.metrics_csv.empty()) {
    std::ofstream out(args.metrics_csv);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.metrics_csv.c_str());
      return 1;
    }
    sampler.write_csv(out);
    std::printf("metrics   : %s (%llu samples)\n", args.metrics_csv.c_str(),
                static_cast<unsigned long long>(sampler.samples().size()));
  }
  if (series) {
    std::ofstream out(args.fig5_csv);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.fig5_csv.c_str());
      return 1;
    }
    write_fig5_csv(out, *series);
    std::printf("fig5 csv  : %s\n", args.fig5_csv.c_str());
  }
  if (trace_file.is_open()) {
    std::printf("trace     : %s\n", args.trace_out.c_str());
  }
  if (!args.flight_recorder_out.empty()) {
    std::ofstream out(args.flight_recorder_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n",
                   args.flight_recorder_out.c_str());
      return 1;
    }
    sim.dump_flight_recorder(out);
    std::printf("flight rec: %s\n", args.flight_recorder_out.c_str());
  }
  if (!args.flight_recorder_chrome.empty()) {
    std::ofstream out(args.flight_recorder_chrome);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n",
                   args.flight_recorder_chrome.c_str());
      return 1;
    }
    sim.dump_flight_recorder_chrome(out);
    std::printf("flight rec: %s (chrome trace)\n",
                args.flight_recorder_chrome.c_str());
  }
  if (const ChaosEngine* chaos = sim.chaos();
      chaos != nullptr && !chaos->plan().empty()) {
    std::printf("chaos     : %llu/%llu events applied, %llu invariant "
                "passes\n",
                static_cast<unsigned long long>(chaos->events_applied()),
                static_cast<unsigned long long>(chaos->plan().events.size()),
                static_cast<unsigned long long>(chaos->invariant_checks()));
  }
  if (sim.chaos_violated()) {
    std::fprintf(stderr, "%s", sim.chaos_report().c_str());
    if (!args.chaos_shrink.empty()) {
      const ChaosViolation& v = sim.chaos()->violation();
      ChaosOracleResult target;
      target.tripped = true;
      target.invariant = v.invariant;
      target.cycle = v.cycle;
      // Each probe replays a candidate plan on a fresh, identically
      // configured stack, so no state leaks between candidates and the
      // shrunken plan reproduces bit-identically from the command line.
      const auto oracle = [&](const ChaosPlan& candidate) {
        ChaosOracleResult out;
        Simulator osim;
        std::string odiag;
        Topology otopo = build_topology(args, config.device, &odiag);
        if (otopo.num_devices() == 0) return out;
        if (!ok(osim.init(config, std::move(otopo), &odiag))) return out;
        if (!ok(osim.set_chaos_plan(candidate, &odiag))) return out;
        const std::unique_ptr<Generator> ogen =
            make_generator(args, config.device);
        if (!ogen) return out;
        HostDriver odriver(osim, *ogen, dcfg);
        DriverResult orr;
        if (ChaosEngine* oc = osim.chaos()) {
          oc->set_host_timeout_hook(
              [&odriver](u64 cycles) { odriver.set_response_timeout(cycles); },
              dcfg.response_timeout_cycles);
          oc->set_host_probe([&odriver, &orr](std::string* detail) {
            return odriver.invariants_ok(orr, detail);
          });
        }
        while (odriver.step(orr)) {}
        odriver.finish(orr);
        if (osim.chaos_violated()) {
          out.tripped = true;
          out.invariant = osim.chaos()->violation().invariant;
          out.cycle = osim.chaos()->violation().cycle;
        }
        return out;
      };
      const ChaosShrinkResult shrunk =
          shrink_chaos_plan(chaos_plan, target, oracle);
      std::ofstream out(args.chaos_shrink);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", args.chaos_shrink.c_str());
      } else {
        write_chaos_plan(out, shrunk.plan);
        std::fprintf(
            stderr,
            "chaos shrink: %llu of %llu events reproduce %s at cycle %llu "
            "(%u oracle runs) -> %s\n",
            static_cast<unsigned long long>(shrunk.plan.events.size()),
            static_cast<unsigned long long>(chaos_plan.events.size()),
            shrunk.repro.invariant.c_str(),
            static_cast<unsigned long long>(shrunk.repro.cycle),
            shrunk.oracle_runs, args.chaos_shrink.c_str());
      }
    }
    return 6;
  }
  if (r.watchdog_fired) {
    std::fprintf(stderr, "%s", sim.watchdog_report().c_str());
    return 3;
  }
  return r.completed == args.requests ? 0 : 1;
}
