file(REMOVE_RECURSE
  "CMakeFiles/unit_analysis.dir/analysis/test_json.cpp.o"
  "CMakeFiles/unit_analysis.dir/analysis/test_json.cpp.o.d"
  "CMakeFiles/unit_analysis.dir/analysis/test_occupancy.cpp.o"
  "CMakeFiles/unit_analysis.dir/analysis/test_occupancy.cpp.o.d"
  "CMakeFiles/unit_analysis.dir/analysis/test_power.cpp.o"
  "CMakeFiles/unit_analysis.dir/analysis/test_power.cpp.o.d"
  "CMakeFiles/unit_analysis.dir/analysis/test_report.cpp.o"
  "CMakeFiles/unit_analysis.dir/analysis/test_report.cpp.o.d"
  "CMakeFiles/unit_analysis.dir/analysis/test_sampler.cpp.o"
  "CMakeFiles/unit_analysis.dir/analysis/test_sampler.cpp.o.d"
  "unit_analysis"
  "unit_analysis.pdb"
  "unit_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
