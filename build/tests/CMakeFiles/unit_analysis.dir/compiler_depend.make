# Empty compiler generated dependencies file for unit_analysis.
# This may be replaced when dependencies are built.
