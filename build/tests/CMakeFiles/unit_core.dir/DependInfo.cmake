
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_backpressure.cpp" "tests/CMakeFiles/unit_core.dir/core/test_backpressure.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_backpressure.cpp.o.d"
  "/root/repo/tests/core/test_chaining.cpp" "tests/CMakeFiles/unit_core.dir/core/test_chaining.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_chaining.cpp.o.d"
  "/root/repo/tests/core/test_checkpoint.cpp" "tests/CMakeFiles/unit_core.dir/core/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_checkpoint.cpp.o.d"
  "/root/repo/tests/core/test_clock_stages.cpp" "tests/CMakeFiles/unit_core.dir/core/test_clock_stages.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_clock_stages.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/unit_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_config_file.cpp" "tests/CMakeFiles/unit_core.dir/core/test_config_file.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_config_file.cpp.o.d"
  "/root/repo/tests/core/test_custom_commands.cpp" "tests/CMakeFiles/unit_core.dir/core/test_custom_commands.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_custom_commands.cpp.o.d"
  "/root/repo/tests/core/test_eight_link.cpp" "tests/CMakeFiles/unit_core.dir/core/test_eight_link.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_eight_link.cpp.o.d"
  "/root/repo/tests/core/test_errors.cpp" "tests/CMakeFiles/unit_core.dir/core/test_errors.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_errors.cpp.o.d"
  "/root/repo/tests/core/test_fault_injection.cpp" "tests/CMakeFiles/unit_core.dir/core/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_fault_injection.cpp.o.d"
  "/root/repo/tests/core/test_live_registers.cpp" "tests/CMakeFiles/unit_core.dir/core/test_live_registers.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_live_registers.cpp.o.d"
  "/root/repo/tests/core/test_memops.cpp" "tests/CMakeFiles/unit_core.dir/core/test_memops.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_memops.cpp.o.d"
  "/root/repo/tests/core/test_memory_system.cpp" "tests/CMakeFiles/unit_core.dir/core/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_memory_system.cpp.o.d"
  "/root/repo/tests/core/test_mode_registers.cpp" "tests/CMakeFiles/unit_core.dir/core/test_mode_registers.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_mode_registers.cpp.o.d"
  "/root/repo/tests/core/test_refresh.cpp" "tests/CMakeFiles/unit_core.dir/core/test_refresh.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_refresh.cpp.o.d"
  "/root/repo/tests/core/test_row_policy.cpp" "tests/CMakeFiles/unit_core.dir/core/test_row_policy.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_row_policy.cpp.o.d"
  "/root/repo/tests/core/test_simulator_basic.cpp" "tests/CMakeFiles/unit_core.dir/core/test_simulator_basic.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_simulator_basic.cpp.o.d"
  "/root/repo/tests/core/test_timing_knobs.cpp" "tests/CMakeFiles/unit_core.dir/core/test_timing_knobs.cpp.o" "gcc" "tests/CMakeFiles/unit_core.dir/core/test_timing_knobs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capi/CMakeFiles/hmcsim_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hmcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hmcsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hmcsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reg/CMakeFiles/hmcsim_reg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hmcsim_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hmcsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
