# Empty compiler generated dependencies file for unit_capi.
# This may be replaced when dependencies are built.
