file(REMOVE_RECURSE
  "CMakeFiles/unit_capi.dir/capi/test_capi.cpp.o"
  "CMakeFiles/unit_capi.dir/capi/test_capi.cpp.o.d"
  "unit_capi"
  "unit_capi.pdb"
  "unit_capi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
