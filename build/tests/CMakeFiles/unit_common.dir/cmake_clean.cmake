file(REMOVE_RECURSE
  "CMakeFiles/unit_common.dir/common/test_bitops.cpp.o"
  "CMakeFiles/unit_common.dir/common/test_bitops.cpp.o.d"
  "CMakeFiles/unit_common.dir/common/test_random.cpp.o"
  "CMakeFiles/unit_common.dir/common/test_random.cpp.o.d"
  "CMakeFiles/unit_common.dir/common/test_status.cpp.o"
  "CMakeFiles/unit_common.dir/common/test_status.cpp.o.d"
  "unit_common"
  "unit_common.pdb"
  "unit_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
