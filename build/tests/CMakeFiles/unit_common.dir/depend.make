# Empty dependencies file for unit_common.
# This may be replaced when dependencies are built.
