file(REMOVE_RECURSE
  "CMakeFiles/integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/integration.dir/integration/test_lifecycle_consistency.cpp.o"
  "CMakeFiles/integration.dir/integration/test_lifecycle_consistency.cpp.o.d"
  "CMakeFiles/integration.dir/integration/test_ordering.cpp.o"
  "CMakeFiles/integration.dir/integration/test_ordering.cpp.o.d"
  "CMakeFiles/integration.dir/integration/test_properties.cpp.o"
  "CMakeFiles/integration.dir/integration/test_properties.cpp.o.d"
  "integration"
  "integration.pdb"
  "integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
