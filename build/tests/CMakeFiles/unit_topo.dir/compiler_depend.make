# Empty compiler generated dependencies file for unit_topo.
# This may be replaced when dependencies are built.
