file(REMOVE_RECURSE
  "CMakeFiles/unit_topo.dir/topo/test_builders.cpp.o"
  "CMakeFiles/unit_topo.dir/topo/test_builders.cpp.o.d"
  "CMakeFiles/unit_topo.dir/topo/test_topology.cpp.o"
  "CMakeFiles/unit_topo.dir/topo/test_topology.cpp.o.d"
  "unit_topo"
  "unit_topo.pdb"
  "unit_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
