# Empty dependencies file for unit_workload.
# This may be replaced when dependencies are built.
