file(REMOVE_RECURSE
  "CMakeFiles/unit_workload.dir/workload/test_driver.cpp.o"
  "CMakeFiles/unit_workload.dir/workload/test_driver.cpp.o.d"
  "CMakeFiles/unit_workload.dir/workload/test_generators.cpp.o"
  "CMakeFiles/unit_workload.dir/workload/test_generators.cpp.o.d"
  "CMakeFiles/unit_workload.dir/workload/test_trace_file.cpp.o"
  "CMakeFiles/unit_workload.dir/workload/test_trace_file.cpp.o.d"
  "unit_workload"
  "unit_workload.pdb"
  "unit_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
