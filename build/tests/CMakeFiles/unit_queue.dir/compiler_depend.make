# Empty compiler generated dependencies file for unit_queue.
# This may be replaced when dependencies are built.
