file(REMOVE_RECURSE
  "CMakeFiles/unit_queue.dir/queue/test_queue.cpp.o"
  "CMakeFiles/unit_queue.dir/queue/test_queue.cpp.o.d"
  "unit_queue"
  "unit_queue.pdb"
  "unit_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
