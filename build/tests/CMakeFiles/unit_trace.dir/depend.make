# Empty dependencies file for unit_trace.
# This may be replaced when dependencies are built.
