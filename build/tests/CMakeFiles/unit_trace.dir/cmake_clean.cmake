file(REMOVE_RECURSE
  "CMakeFiles/unit_trace.dir/trace/test_lifecycle.cpp.o"
  "CMakeFiles/unit_trace.dir/trace/test_lifecycle.cpp.o.d"
  "CMakeFiles/unit_trace.dir/trace/test_reader.cpp.o"
  "CMakeFiles/unit_trace.dir/trace/test_reader.cpp.o.d"
  "CMakeFiles/unit_trace.dir/trace/test_series.cpp.o"
  "CMakeFiles/unit_trace.dir/trace/test_series.cpp.o.d"
  "CMakeFiles/unit_trace.dir/trace/test_sinks.cpp.o"
  "CMakeFiles/unit_trace.dir/trace/test_sinks.cpp.o.d"
  "unit_trace"
  "unit_trace.pdb"
  "unit_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
