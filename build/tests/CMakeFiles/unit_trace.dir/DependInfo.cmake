
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_lifecycle.cpp" "tests/CMakeFiles/unit_trace.dir/trace/test_lifecycle.cpp.o" "gcc" "tests/CMakeFiles/unit_trace.dir/trace/test_lifecycle.cpp.o.d"
  "/root/repo/tests/trace/test_reader.cpp" "tests/CMakeFiles/unit_trace.dir/trace/test_reader.cpp.o" "gcc" "tests/CMakeFiles/unit_trace.dir/trace/test_reader.cpp.o.d"
  "/root/repo/tests/trace/test_series.cpp" "tests/CMakeFiles/unit_trace.dir/trace/test_series.cpp.o" "gcc" "tests/CMakeFiles/unit_trace.dir/trace/test_series.cpp.o.d"
  "/root/repo/tests/trace/test_sinks.cpp" "tests/CMakeFiles/unit_trace.dir/trace/test_sinks.cpp.o" "gcc" "tests/CMakeFiles/unit_trace.dir/trace/test_sinks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capi/CMakeFiles/hmcsim_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hmcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hmcsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hmcsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reg/CMakeFiles/hmcsim_reg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hmcsim_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hmcsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
