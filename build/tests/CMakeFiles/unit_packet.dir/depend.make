# Empty dependencies file for unit_packet.
# This may be replaced when dependencies are built.
