file(REMOVE_RECURSE
  "CMakeFiles/unit_packet.dir/packet/test_command.cpp.o"
  "CMakeFiles/unit_packet.dir/packet/test_command.cpp.o.d"
  "CMakeFiles/unit_packet.dir/packet/test_crc32.cpp.o"
  "CMakeFiles/unit_packet.dir/packet/test_crc32.cpp.o.d"
  "CMakeFiles/unit_packet.dir/packet/test_fuzz.cpp.o"
  "CMakeFiles/unit_packet.dir/packet/test_fuzz.cpp.o.d"
  "CMakeFiles/unit_packet.dir/packet/test_packet.cpp.o"
  "CMakeFiles/unit_packet.dir/packet/test_packet.cpp.o.d"
  "unit_packet"
  "unit_packet.pdb"
  "unit_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
