file(REMOVE_RECURSE
  "CMakeFiles/unit_mem.dir/mem/test_address_map.cpp.o"
  "CMakeFiles/unit_mem.dir/mem/test_address_map.cpp.o.d"
  "CMakeFiles/unit_mem.dir/mem/test_storage.cpp.o"
  "CMakeFiles/unit_mem.dir/mem/test_storage.cpp.o.d"
  "unit_mem"
  "unit_mem.pdb"
  "unit_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
