# Empty compiler generated dependencies file for unit_mem.
# This may be replaced when dependencies are built.
