file(REMOVE_RECURSE
  "CMakeFiles/unit_reg.dir/reg/test_registers.cpp.o"
  "CMakeFiles/unit_reg.dir/reg/test_registers.cpp.o.d"
  "unit_reg"
  "unit_reg.pdb"
  "unit_reg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
