# Empty dependencies file for unit_reg.
# This may be replaced when dependencies are built.
