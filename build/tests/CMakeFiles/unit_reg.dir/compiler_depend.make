# Empty compiler generated dependencies file for unit_reg.
# This may be replaced when dependencies are built.
