file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_topo.dir/builders.cpp.o"
  "CMakeFiles/hmcsim_topo.dir/builders.cpp.o.d"
  "CMakeFiles/hmcsim_topo.dir/topology.cpp.o"
  "CMakeFiles/hmcsim_topo.dir/topology.cpp.o.d"
  "libhmcsim_topo.a"
  "libhmcsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
