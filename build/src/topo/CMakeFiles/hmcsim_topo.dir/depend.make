# Empty dependencies file for hmcsim_topo.
# This may be replaced when dependencies are built.
