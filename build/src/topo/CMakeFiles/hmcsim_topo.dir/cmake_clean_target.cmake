file(REMOVE_RECURSE
  "libhmcsim_topo.a"
)
