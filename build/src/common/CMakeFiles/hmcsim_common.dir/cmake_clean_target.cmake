file(REMOVE_RECURSE
  "libhmcsim_common.a"
)
