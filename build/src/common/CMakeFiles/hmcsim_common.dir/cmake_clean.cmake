file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_common.dir/random.cpp.o"
  "CMakeFiles/hmcsim_common.dir/random.cpp.o.d"
  "CMakeFiles/hmcsim_common.dir/status.cpp.o"
  "CMakeFiles/hmcsim_common.dir/status.cpp.o.d"
  "libhmcsim_common.a"
  "libhmcsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
