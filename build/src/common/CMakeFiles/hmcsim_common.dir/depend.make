# Empty dependencies file for hmcsim_common.
# This may be replaced when dependencies are built.
