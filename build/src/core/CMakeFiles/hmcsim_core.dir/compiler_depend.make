# Empty compiler generated dependencies file for hmcsim_core.
# This may be replaced when dependencies are built.
