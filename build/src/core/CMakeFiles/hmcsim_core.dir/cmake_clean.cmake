file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_core.dir/checkpoint.cpp.o"
  "CMakeFiles/hmcsim_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/config.cpp.o"
  "CMakeFiles/hmcsim_core.dir/config.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/config_file.cpp.o"
  "CMakeFiles/hmcsim_core.dir/config_file.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/custom_command.cpp.o"
  "CMakeFiles/hmcsim_core.dir/custom_command.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/device.cpp.o"
  "CMakeFiles/hmcsim_core.dir/device.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/memory_system.cpp.o"
  "CMakeFiles/hmcsim_core.dir/memory_system.cpp.o.d"
  "CMakeFiles/hmcsim_core.dir/simulator.cpp.o"
  "CMakeFiles/hmcsim_core.dir/simulator.cpp.o.d"
  "libhmcsim_core.a"
  "libhmcsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
