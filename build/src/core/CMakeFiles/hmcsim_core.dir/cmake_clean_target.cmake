file(REMOVE_RECURSE
  "libhmcsim_core.a"
)
