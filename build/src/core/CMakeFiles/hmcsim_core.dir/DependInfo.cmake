
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/hmcsim_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/hmcsim_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/config.cpp.o.d"
  "/root/repo/src/core/config_file.cpp" "src/core/CMakeFiles/hmcsim_core.dir/config_file.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/config_file.cpp.o.d"
  "/root/repo/src/core/custom_command.cpp" "src/core/CMakeFiles/hmcsim_core.dir/custom_command.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/custom_command.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/hmcsim_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/device.cpp.o.d"
  "/root/repo/src/core/memory_system.cpp" "src/core/CMakeFiles/hmcsim_core.dir/memory_system.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/memory_system.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/hmcsim_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/hmcsim_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hmcsim_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hmcsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reg/CMakeFiles/hmcsim_reg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hmcsim_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
