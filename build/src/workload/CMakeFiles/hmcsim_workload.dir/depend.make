# Empty dependencies file for hmcsim_workload.
# This may be replaced when dependencies are built.
