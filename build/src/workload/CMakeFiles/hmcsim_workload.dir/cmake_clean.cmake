file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_workload.dir/driver.cpp.o"
  "CMakeFiles/hmcsim_workload.dir/driver.cpp.o.d"
  "CMakeFiles/hmcsim_workload.dir/generator.cpp.o"
  "CMakeFiles/hmcsim_workload.dir/generator.cpp.o.d"
  "CMakeFiles/hmcsim_workload.dir/trace_file.cpp.o"
  "CMakeFiles/hmcsim_workload.dir/trace_file.cpp.o.d"
  "libhmcsim_workload.a"
  "libhmcsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
