file(REMOVE_RECURSE
  "libhmcsim_workload.a"
)
