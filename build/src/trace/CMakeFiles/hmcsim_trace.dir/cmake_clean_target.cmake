file(REMOVE_RECURSE
  "libhmcsim_trace.a"
)
