# Empty dependencies file for hmcsim_trace.
# This may be replaced when dependencies are built.
