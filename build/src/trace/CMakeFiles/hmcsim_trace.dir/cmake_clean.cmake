file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_trace.dir/chrome.cpp.o"
  "CMakeFiles/hmcsim_trace.dir/chrome.cpp.o.d"
  "CMakeFiles/hmcsim_trace.dir/lifecycle.cpp.o"
  "CMakeFiles/hmcsim_trace.dir/lifecycle.cpp.o.d"
  "CMakeFiles/hmcsim_trace.dir/reader.cpp.o"
  "CMakeFiles/hmcsim_trace.dir/reader.cpp.o.d"
  "CMakeFiles/hmcsim_trace.dir/series.cpp.o"
  "CMakeFiles/hmcsim_trace.dir/series.cpp.o.d"
  "CMakeFiles/hmcsim_trace.dir/sink.cpp.o"
  "CMakeFiles/hmcsim_trace.dir/sink.cpp.o.d"
  "libhmcsim_trace.a"
  "libhmcsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
