
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrome.cpp" "src/trace/CMakeFiles/hmcsim_trace.dir/chrome.cpp.o" "gcc" "src/trace/CMakeFiles/hmcsim_trace.dir/chrome.cpp.o.d"
  "/root/repo/src/trace/lifecycle.cpp" "src/trace/CMakeFiles/hmcsim_trace.dir/lifecycle.cpp.o" "gcc" "src/trace/CMakeFiles/hmcsim_trace.dir/lifecycle.cpp.o.d"
  "/root/repo/src/trace/reader.cpp" "src/trace/CMakeFiles/hmcsim_trace.dir/reader.cpp.o" "gcc" "src/trace/CMakeFiles/hmcsim_trace.dir/reader.cpp.o.d"
  "/root/repo/src/trace/series.cpp" "src/trace/CMakeFiles/hmcsim_trace.dir/series.cpp.o" "gcc" "src/trace/CMakeFiles/hmcsim_trace.dir/series.cpp.o.d"
  "/root/repo/src/trace/sink.cpp" "src/trace/CMakeFiles/hmcsim_trace.dir/sink.cpp.o" "gcc" "src/trace/CMakeFiles/hmcsim_trace.dir/sink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hmcsim_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
