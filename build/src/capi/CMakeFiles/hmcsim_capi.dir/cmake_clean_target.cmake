file(REMOVE_RECURSE
  "libhmcsim_capi.a"
)
