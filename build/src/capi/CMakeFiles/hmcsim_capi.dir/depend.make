# Empty dependencies file for hmcsim_capi.
# This may be replaced when dependencies are built.
