file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_capi.dir/hmc_sim.cpp.o"
  "CMakeFiles/hmcsim_capi.dir/hmc_sim.cpp.o.d"
  "libhmcsim_capi.a"
  "libhmcsim_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
