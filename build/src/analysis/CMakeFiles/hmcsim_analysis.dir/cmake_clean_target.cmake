file(REMOVE_RECURSE
  "libhmcsim_analysis.a"
)
