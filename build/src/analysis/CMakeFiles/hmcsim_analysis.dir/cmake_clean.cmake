file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_analysis.dir/json.cpp.o"
  "CMakeFiles/hmcsim_analysis.dir/json.cpp.o.d"
  "CMakeFiles/hmcsim_analysis.dir/occupancy.cpp.o"
  "CMakeFiles/hmcsim_analysis.dir/occupancy.cpp.o.d"
  "CMakeFiles/hmcsim_analysis.dir/power.cpp.o"
  "CMakeFiles/hmcsim_analysis.dir/power.cpp.o.d"
  "CMakeFiles/hmcsim_analysis.dir/report.cpp.o"
  "CMakeFiles/hmcsim_analysis.dir/report.cpp.o.d"
  "CMakeFiles/hmcsim_analysis.dir/sampler.cpp.o"
  "CMakeFiles/hmcsim_analysis.dir/sampler.cpp.o.d"
  "libhmcsim_analysis.a"
  "libhmcsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
