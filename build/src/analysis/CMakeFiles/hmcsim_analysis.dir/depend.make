# Empty dependencies file for hmcsim_analysis.
# This may be replaced when dependencies are built.
