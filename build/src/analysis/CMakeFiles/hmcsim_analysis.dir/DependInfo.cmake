
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/json.cpp" "src/analysis/CMakeFiles/hmcsim_analysis.dir/json.cpp.o" "gcc" "src/analysis/CMakeFiles/hmcsim_analysis.dir/json.cpp.o.d"
  "/root/repo/src/analysis/occupancy.cpp" "src/analysis/CMakeFiles/hmcsim_analysis.dir/occupancy.cpp.o" "gcc" "src/analysis/CMakeFiles/hmcsim_analysis.dir/occupancy.cpp.o.d"
  "/root/repo/src/analysis/power.cpp" "src/analysis/CMakeFiles/hmcsim_analysis.dir/power.cpp.o" "gcc" "src/analysis/CMakeFiles/hmcsim_analysis.dir/power.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/hmcsim_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/hmcsim_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/sampler.cpp" "src/analysis/CMakeFiles/hmcsim_analysis.dir/sampler.cpp.o" "gcc" "src/analysis/CMakeFiles/hmcsim_analysis.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/hmcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hmcsim_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hmcsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reg/CMakeFiles/hmcsim_reg.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hmcsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
