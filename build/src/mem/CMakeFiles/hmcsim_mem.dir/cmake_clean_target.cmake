file(REMOVE_RECURSE
  "libhmcsim_mem.a"
)
