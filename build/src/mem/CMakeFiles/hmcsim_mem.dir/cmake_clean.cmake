file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_mem.dir/address_map.cpp.o"
  "CMakeFiles/hmcsim_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/hmcsim_mem.dir/storage.cpp.o"
  "CMakeFiles/hmcsim_mem.dir/storage.cpp.o.d"
  "libhmcsim_mem.a"
  "libhmcsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
