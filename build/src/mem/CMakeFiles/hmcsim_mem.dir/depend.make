# Empty dependencies file for hmcsim_mem.
# This may be replaced when dependencies are built.
