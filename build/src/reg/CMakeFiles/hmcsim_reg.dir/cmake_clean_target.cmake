file(REMOVE_RECURSE
  "libhmcsim_reg.a"
)
