# Empty compiler generated dependencies file for hmcsim_reg.
# This may be replaced when dependencies are built.
