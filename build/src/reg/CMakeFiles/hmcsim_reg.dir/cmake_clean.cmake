file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_reg.dir/registers.cpp.o"
  "CMakeFiles/hmcsim_reg.dir/registers.cpp.o.d"
  "libhmcsim_reg.a"
  "libhmcsim_reg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
