file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_packet.dir/command.cpp.o"
  "CMakeFiles/hmcsim_packet.dir/command.cpp.o.d"
  "CMakeFiles/hmcsim_packet.dir/crc32.cpp.o"
  "CMakeFiles/hmcsim_packet.dir/crc32.cpp.o.d"
  "CMakeFiles/hmcsim_packet.dir/packet.cpp.o"
  "CMakeFiles/hmcsim_packet.dir/packet.cpp.o.d"
  "libhmcsim_packet.a"
  "libhmcsim_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
