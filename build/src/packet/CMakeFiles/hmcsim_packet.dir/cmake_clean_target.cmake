file(REMOVE_RECURSE
  "libhmcsim_packet.a"
)
