# Empty compiler generated dependencies file for hmcsim_packet.
# This may be replaced when dependencies are built.
