file(REMOVE_RECURSE
  "CMakeFiles/numa_channels.dir/numa_channels.cpp.o"
  "CMakeFiles/numa_channels.dir/numa_channels.cpp.o.d"
  "numa_channels"
  "numa_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
