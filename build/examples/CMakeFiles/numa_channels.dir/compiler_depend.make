# Empty compiler generated dependencies file for numa_channels.
# This may be replaced when dependencies are built.
