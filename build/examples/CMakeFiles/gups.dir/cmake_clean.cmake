file(REMOVE_RECURSE
  "CMakeFiles/gups.dir/gups.cpp.o"
  "CMakeFiles/gups.dir/gups.cpp.o.d"
  "gups"
  "gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
