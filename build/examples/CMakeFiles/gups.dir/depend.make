# Empty dependencies file for gups.
# This may be replaced when dependencies are built.
