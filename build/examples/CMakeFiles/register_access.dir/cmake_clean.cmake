file(REMOVE_RECURSE
  "CMakeFiles/register_access.dir/register_access.cpp.o"
  "CMakeFiles/register_access.dir/register_access.cpp.o.d"
  "register_access"
  "register_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
