# Empty dependencies file for register_access.
# This may be replaced when dependencies are built.
