# Empty compiler generated dependencies file for radix_sort.
# This may be replaced when dependencies are built.
