file(REMOVE_RECURSE
  "CMakeFiles/radix_sort.dir/radix_sort.cpp.o"
  "CMakeFiles/radix_sort.dir/radix_sort.cpp.o.d"
  "radix_sort"
  "radix_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
