# Empty dependencies file for cpu_integration.
# This may be replaced when dependencies are built.
