file(REMOVE_RECURSE
  "CMakeFiles/cpu_integration.dir/cpu_integration.cpp.o"
  "CMakeFiles/cpu_integration.dir/cpu_integration.cpp.o.d"
  "cpu_integration"
  "cpu_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
