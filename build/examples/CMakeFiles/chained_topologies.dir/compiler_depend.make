# Empty compiler generated dependencies file for chained_topologies.
# This may be replaced when dependencies are built.
