file(REMOVE_RECURSE
  "CMakeFiles/chained_topologies.dir/chained_topologies.cpp.o"
  "CMakeFiles/chained_topologies.dir/chained_topologies.cpp.o.d"
  "chained_topologies"
  "chained_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chained_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
