# Empty compiler generated dependencies file for hmcsim_run.
# This may be replaced when dependencies are built.
