file(REMOVE_RECURSE
  "CMakeFiles/hmcsim_run.dir/hmcsim_run.cpp.o"
  "CMakeFiles/hmcsim_run.dir/hmcsim_run.cpp.o.d"
  "hmcsim_run"
  "hmcsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
