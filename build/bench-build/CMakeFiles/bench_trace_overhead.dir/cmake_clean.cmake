file(REMOVE_RECURSE
  "../bench/bench_trace_overhead"
  "../bench/bench_trace_overhead.pdb"
  "CMakeFiles/bench_trace_overhead.dir/bench_trace_overhead.cpp.o"
  "CMakeFiles/bench_trace_overhead.dir/bench_trace_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
