# Empty dependencies file for bench_trace_overhead.
# This may be replaced when dependencies are built.
