# Empty compiler generated dependencies file for bench_packets.
# This may be replaced when dependencies are built.
