file(REMOVE_RECURSE
  "../bench/bench_packets"
  "../bench/bench_packets.pdb"
  "CMakeFiles/bench_packets.dir/bench_packets.cpp.o"
  "CMakeFiles/bench_packets.dir/bench_packets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
