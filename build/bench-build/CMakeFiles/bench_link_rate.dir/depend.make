# Empty dependencies file for bench_link_rate.
# This may be replaced when dependencies are built.
