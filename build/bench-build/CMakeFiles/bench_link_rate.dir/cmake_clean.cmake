file(REMOVE_RECURSE
  "../bench/bench_link_rate"
  "../bench/bench_link_rate.pdb"
  "CMakeFiles/bench_link_rate.dir/bench_link_rate.cpp.o"
  "CMakeFiles/bench_link_rate.dir/bench_link_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
