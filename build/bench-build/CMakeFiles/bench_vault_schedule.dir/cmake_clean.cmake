file(REMOVE_RECURSE
  "../bench/bench_vault_schedule"
  "../bench/bench_vault_schedule.pdb"
  "CMakeFiles/bench_vault_schedule.dir/bench_vault_schedule.cpp.o"
  "CMakeFiles/bench_vault_schedule.dir/bench_vault_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vault_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
