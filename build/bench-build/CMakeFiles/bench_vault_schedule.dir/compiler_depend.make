# Empty compiler generated dependencies file for bench_vault_schedule.
# This may be replaced when dependencies are built.
