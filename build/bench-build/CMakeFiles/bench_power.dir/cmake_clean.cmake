file(REMOVE_RECURSE
  "../bench/bench_power"
  "../bench/bench_power.pdb"
  "CMakeFiles/bench_power.dir/bench_power.cpp.o"
  "CMakeFiles/bench_power.dir/bench_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
