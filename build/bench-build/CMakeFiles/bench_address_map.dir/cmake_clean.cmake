file(REMOVE_RECURSE
  "../bench/bench_address_map"
  "../bench/bench_address_map.pdb"
  "CMakeFiles/bench_address_map.dir/bench_address_map.cpp.o"
  "CMakeFiles/bench_address_map.dir/bench_address_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_address_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
