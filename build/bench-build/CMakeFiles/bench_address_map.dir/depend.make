# Empty dependencies file for bench_address_map.
# This may be replaced when dependencies are built.
