file(REMOVE_RECURSE
  "../bench/bench_link_routing"
  "../bench/bench_link_routing.pdb"
  "CMakeFiles/bench_link_routing.dir/bench_link_routing.cpp.o"
  "CMakeFiles/bench_link_routing.dir/bench_link_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
