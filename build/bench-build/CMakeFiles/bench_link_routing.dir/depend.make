# Empty dependencies file for bench_link_routing.
# This may be replaced when dependencies are built.
