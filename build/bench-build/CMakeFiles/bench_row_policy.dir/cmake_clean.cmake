file(REMOVE_RECURSE
  "../bench/bench_row_policy"
  "../bench/bench_row_policy.pdb"
  "CMakeFiles/bench_row_policy.dir/bench_row_policy.cpp.o"
  "CMakeFiles/bench_row_policy.dir/bench_row_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_row_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
