# Empty compiler generated dependencies file for bench_row_policy.
# This may be replaced when dependencies are built.
