# Empty compiler generated dependencies file for bench_rw_mix.
# This may be replaced when dependencies are built.
