file(REMOVE_RECURSE
  "../bench/bench_rw_mix"
  "../bench/bench_rw_mix.pdb"
  "CMakeFiles/bench_rw_mix.dir/bench_rw_mix.cpp.o"
  "CMakeFiles/bench_rw_mix.dir/bench_rw_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rw_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
