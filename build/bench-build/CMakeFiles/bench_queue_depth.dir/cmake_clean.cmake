file(REMOVE_RECURSE
  "../bench/bench_queue_depth"
  "../bench/bench_queue_depth.pdb"
  "CMakeFiles/bench_queue_depth.dir/bench_queue_depth.cpp.o"
  "CMakeFiles/bench_queue_depth.dir/bench_queue_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
