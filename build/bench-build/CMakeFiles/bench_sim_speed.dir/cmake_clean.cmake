file(REMOVE_RECURSE
  "../bench/bench_sim_speed"
  "../bench/bench_sim_speed.pdb"
  "CMakeFiles/bench_sim_speed.dir/bench_sim_speed.cpp.o"
  "CMakeFiles/bench_sim_speed.dir/bench_sim_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
