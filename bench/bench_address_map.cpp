// Ablation A2: address map interleave order.
//
// §III.B: the spec's default map modes place the vault bits in the least
// significant positions, then the bank bits, "in order to avoid bank
// conflicts" on sequential traffic.  This bench quantifies that claim by
// running random AND sequential workloads under the low-interleave,
// bank-first and linear maps.
//
// Env knobs: HMCSIM_AMAP_REQUESTS (default 2^16).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

const char* mode_name(AddrMapMode m) {
  switch (m) {
    case AddrMapMode::LowInterleave: return "low-interleave";
    case AddrMapMode::BankFirst: return "bank-first";
    case AddrMapMode::Linear: return "linear";
  }
  return "?";
}

}  // namespace

int main() {
  const u64 requests = env_u64("HMCSIM_AMAP_REQUESTS", u64{1} << 16);
  std::printf("=== Ablation A2: address map modes (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-16s %-10s %10s %14s %12s\n", "map", "workload", "cycles",
              "conflicts", "lat_mean");

  for (const auto mode : {AddrMapMode::LowInterleave, AddrMapMode::BankFirst,
                          AddrMapMode::Linear}) {
    for (const bool sequential : {false, true}) {
      DeviceConfig dc = table1_config_4link_8bank();
      dc.capacity_bytes = 0;
      dc.map_mode = mode;
      Simulator sim = make_sim_or_die(dc);

      GeneratorConfig gc;
      gc.capacity_bytes = dc.derived_capacity();
      gc.request_bytes = 64;
      DriverConfig dcfg;
      dcfg.total_requests = requests;
      dcfg.max_cycles = 200u * 1000 * 1000;
      DriverResult r;
      if (sequential) {
        StreamGenerator gen(gc);
        r = HostDriver(sim, gen, dcfg).run();
      } else {
        RandomAccessGenerator gen(gc);
        r = HostDriver(sim, gen, dcfg).run();
      }
      std::printf("%-16s %-10s %10llu %14llu %12.1f\n", mode_name(mode),
                  sequential ? "stream" : "random",
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(
                      sim.total_stats().bank_conflicts),
                  r.latency.mean());
    }
  }

  std::printf("\nexpected shape: the maps are equivalent under uniform "
              "random traffic, but on\nsequential streams the default "
              "low-interleave map spreads consecutive blocks across\nvaults "
              "then banks and wins decisively; the linear map serializes "
              "through one bank.\n");
  return 0;
}
