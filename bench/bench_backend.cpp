// Vault timing-backend cost harness: what does the VaultTimingBackend
// seam (src/backend/, docs/BACKENDS.md) cost the default model, and what
// does each alternative model deliver end-to-end?
//
// The perf contract is that pluggability is free at the default setting:
// pre-refactor, the bank-timing arithmetic was inlined into the stage-3
// vault scan; post-refactor the same arithmetic sits behind one virtual
// call per gate/issue/refresh decision.  The harness measures:
//
//   dispatch     a micro-kernel running the hmc_dram closed-page
//                arithmetic both inline (the pre-refactor shape) and
//                through an opaque VaultTimingBackend pointer from
//                make_timing_backend (the shipping shape), reporting
//                ns/call for each
//   end_to_end   host-side requests/second of the §VI.A random-access
//                workload under each backend (hmc_dram, generic_ddr,
//                pcm_like), interleaved best-of repeats
//
// Gate: the virtual-dispatch premium, amortized over the measured
// dispatch density of the real workload (issues + gated conflict scans +
// refreshes per request), must stay under 2% of hmc_dram end-to-end run
// time.  The bench exits nonzero otherwise, and scripts/run_benches.sh
// re-checks the committed JSON.
//
//   build/bench/bench_backend [--json <path|->]
//
// Scale knobs (env): HMCSIM_BACKENDBENCH_REQUESTS,
// HMCSIM_BACKENDBENCH_REPEATS, HMCSIM_BACKENDBENCH_KERNEL_ITERS.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/timing_backend.hpp"
#include "bench/bench_common.hpp"
#include "core/device.hpp"

namespace hmcsim::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr u32 kKernelBanks = 8;

/// Keep a value alive without letting the optimizer reason about it.
template <typename T>
inline void keep(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

/// The micro-kernel access pattern: a rotating bank scan with the clock
/// advancing every few probes, so both gate outcomes and the issue path
/// run.  Identical for both arms; only the dispatch mechanism differs.
struct KernelState {
  VaultState vault;
  DeviceStats stats;

  KernelState() {
    vault.bank_busy_until.assign(kKernelBanks, 0);
    vault.open_row.assign(kKernelBanks, ~u64{0});
  }
};

/// Inline arm: the closed-page arithmetic exactly as the pre-refactor
/// vault scan inlined it.
double kernel_inline_ns(const DeviceConfig& dc, u64 iters) {
  KernelState st;
  u64 ready = 0;
  const auto start = SteadyClock::now();
  for (u64 i = 0; i < iters; ++i) {
    const Cycle now = static_cast<Cycle>(i / kKernelBanks);
    const u32 bank = static_cast<u32>(i % kKernelBanks);
    if (st.vault.bank_busy_until[bank] > now) continue;
    ++ready;
    st.vault.bank_busy_until[bank] = now + dc.bank_busy_cycles;
  }
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  keep(ready);
  keep(st.vault.bank_busy_until[0]);
  return 1e9 * secs / static_cast<double>(iters);
}

/// Virtual arm: the same pattern through the factory's opaque pointer,
/// exactly as core/simulator.cpp dispatches it.
double kernel_virtual_ns(const DeviceConfig& dc, u64 iters) {
  KernelState st;
  std::unique_ptr<VaultTimingBackend> backend = make_timing_backend(dc, 0);
  VaultTimingBackend* p = backend.get();
  keep(p);  // opaque: no devirtualization
  u64 ready = 0;
  const auto start = SteadyClock::now();
  for (u64 i = 0; i < iters; ++i) {
    const Cycle now = static_cast<Cycle>(i / kKernelBanks);
    const u32 bank = static_cast<u32>(i % kKernelBanks);
    if (p->gate(st.vault, bank, AccessClass::Read, now) != BankGate::Ready) {
      continue;
    }
    ++ready;
    p->issue(st.vault, bank, /*row=*/0, AccessClass::Read, now, st.stats);
  }
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  keep(ready);
  keep(st.vault.bank_busy_until[0]);
  return 1e9 * secs / static_cast<double>(iters);
}

DeviceConfig backend_device(TimingBackend backend) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.timing_backend = backend;
  if (backend == TimingBackend::PcmLike) {
    dc.pcm_write_gap_cycles = 8;  // keep the throttle path hot
  }
  return dc;
}

struct BackendRun {
  const char* name;
  TimingBackend backend;
  Simulator sim;
  double best_seconds{0.0};
  u64 requests{0};
  u64 dispatches{0};  ///< issues + gated conflict scans + refreshes

  BackendRun(const char* name_, TimingBackend backend_)
      : name(name_), backend(backend_),
        sim(make_sim_or_die(backend_device(backend_))) {}

  double requests_per_sec() const {
    return best_seconds > 0.0
               ? static_cast<double>(requests) / best_seconds
               : 0.0;
  }
};

void run_end_to_end(std::vector<BackendRun>& runs, u64 requests,
                    u64 repeats) {
  // Untimed warmup, then interleaved best-of rounds (same discipline as
  // bench_checkpoint: repeatable gaps are systematic cost, bursts that
  // lose the CPU are noise).
  for (BackendRun& r : runs) {
    (void)run_random_access(r.sim, std::min<u64>(requests, 8192));
  }
  for (u64 rep = 0; rep < repeats; ++rep) {
    for (BackendRun& run : runs) {
      const auto start = SteadyClock::now();
      const DriverResult r = run_random_access(run.sim, requests);
      const double secs =
          std::chrono::duration<double>(SteadyClock::now() - start).count();
      if (r.completed != requests) {
        std::fprintf(stderr, "%s: run retired %llu of %llu requests\n",
                     run.name, static_cast<unsigned long long>(r.completed),
                     static_cast<unsigned long long>(requests));
        std::exit(1);
      }
      if (rep == 0 || secs < run.best_seconds) {
        run.best_seconds = secs;
      }
    }
  }
  for (BackendRun& run : runs) {
    const DeviceStats s = run.sim.total_stats();
    const u64 total = s.retired();
    run.requests = requests;
    // Dispatch density measured over everything this simulator retired
    // (warmup + all repeats), scaled to one burst.
    const u64 all_dispatches = s.retired() + s.bank_conflicts + s.refreshes;
    run.dispatches = total > 0 ? all_dispatches * requests / total : 0;
  }
}

void write_json(std::ostream& os, double inline_ns, double virtual_ns,
                const std::vector<BackendRun>& runs, double overhead_pct) {
  os << "{\n  \"bench\": \"bench_backend\",\n"
     << "  \"dispatch\": {\"inline_ns_per_call\": " << inline_ns
     << ", \"virtual_ns_per_call\": " << virtual_ns
     << ", \"delta_ns_per_call\": " << (virtual_ns - inline_ns) << "},\n"
     << "  \"end_to_end\": [\n";
  for (usize i = 0; i < runs.size(); ++i) {
    const BackendRun& r = runs[i];
    os << "   {\"backend\": \"" << r.name
       << "\", \"requests\": " << r.requests
       << ", \"seconds\": " << r.best_seconds
       << ", \"requests_per_sec\": " << r.requests_per_sec()
       << ", \"dispatches_per_request\": "
       << (r.requests > 0
               ? static_cast<double>(r.dispatches) /
                     static_cast<double>(r.requests)
               : 0.0)
       << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"hmc_dram_dispatch_overhead_pct\": " << overhead_pct
     << "\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  const u64 requests = env_u64("HMCSIM_BACKENDBENCH_REQUESTS", 1 << 16);
  const u64 repeats = env_u64("HMCSIM_BACKENDBENCH_REPEATS", 15);
  const u64 kernel_iters =
      env_u64("HMCSIM_BACKENDBENCH_KERNEL_ITERS", u64{1} << 26);

  const DeviceConfig dc = backend_device(TimingBackend::HmcDram);
  // Warmup pass, then best-of-3 for each arm (the kernel is seconds-scale
  // and memory-resident; best-of suffices).
  double inline_ns = 0.0;
  double virtual_ns = 0.0;
  for (int rep = -1; rep < 3; ++rep) {
    const double a = kernel_inline_ns(dc, kernel_iters);
    const double b = kernel_virtual_ns(dc, kernel_iters);
    if (rep < 0) continue;
    if (rep == 0 || a < inline_ns) inline_ns = a;
    if (rep == 0 || b < virtual_ns) virtual_ns = b;
  }
  std::printf("dispatch kernel: inline %.3f ns/call, virtual %.3f ns/call "
              "(delta %.3f ns)\n",
              inline_ns, virtual_ns, virtual_ns - inline_ns);

  std::vector<BackendRun> runs;
  runs.reserve(3);
  runs.emplace_back("hmc_dram", TimingBackend::HmcDram);
  runs.emplace_back("generic_ddr", TimingBackend::GenericDdr);
  runs.emplace_back("pcm_like", TimingBackend::PcmLike);
  run_end_to_end(runs, requests, repeats);
  for (const BackendRun& r : runs) {
    std::printf("%-12s %10llu reqs | %10.0f req/s | %.1f dispatches/req\n",
                r.name, static_cast<unsigned long long>(r.requests),
                r.requests_per_sec(),
                static_cast<double>(r.dispatches) /
                    static_cast<double>(r.requests));
  }

  // Amortize the per-call premium over the measured dispatch density of
  // the hmc_dram run: premium * dispatches = virtual-call time added to a
  // burst that took best_seconds in total.
  const BackendRun& dram = runs[0];
  const double delta_ns = virtual_ns - inline_ns;
  const double overhead_pct =
      dram.best_seconds > 0.0
          ? 100.0 * (delta_ns * static_cast<double>(dram.dispatches)) /
                (dram.best_seconds * 1e9)
          : 0.0;
  std::printf("hmc_dram dispatch overhead: %.3f%% of end-to-end run time "
              "(gate: < 2%%)\n",
              overhead_pct);

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, inline_ns, virtual_ns, runs, overhead_pct);
    } else {
      std::ofstream out(json_path);
      write_json(out, inline_ns, virtual_ns, runs, overhead_pct);
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
      }
    }
  }

  if (overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: hmc_dram virtual-dispatch overhead %.3f%% breaches "
                 "the 2%% acceptance gate\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
