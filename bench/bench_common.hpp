// Shared plumbing for the experiment harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

namespace hmcsim::bench {

/// Environment override helper (e.g. HMCSIM_TABLE1_REQUESTS=33554432 for
/// the paper's full 2^25-request runs).
inline u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

struct NamedConfig {
  std::string label;
  DeviceConfig config;
};

/// The paper's four Table I device configurations, in table order.
inline std::vector<NamedConfig> table1_configs() {
  return {
      {"4-Link; 8-Bank; 2GB", table1_config_4link_8bank()},
      {"4-Link; 16-Bank; 4GB", table1_config_4link_16bank()},
      {"8-Link; 8-Bank; 4GB", table1_config_8link_8bank()},
      {"8-Link; 16-Bank; 8GB", table1_config_8link_16bank()},
  };
}

/// Run the paper's §VI.A random-access harness against a single device.
/// Tracing setup (if any) must be attached by the caller before invoking.
inline DriverResult run_random_access(Simulator& sim, u64 requests,
                                      double read_fraction = 0.5,
                                      InjectionPolicy policy =
                                          InjectionPolicy::RoundRobin) {
  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.request_bytes = 64;
  gc.read_fraction = read_fraction;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.policy = policy;
  HostDriver driver(sim, gen, dcfg);
  return driver.run();
}

inline Simulator make_sim_or_die(const DeviceConfig& device) {
  DeviceConfig dc = device;
  dc.model_data = false;  // random sweeps touch GBs; skip data payloads
  Simulator sim;
  std::string diag;
  if (!ok(sim.init_simple(dc, &diag))) {
    std::fprintf(stderr, "simulator init failed: %s\n", diag.c_str());
    std::exit(1);
  }
  return sim;
}

}  // namespace hmcsim::bench
