// Link-layer retry protocol cost harness: host-side requests/second with
// the spec retry machine (docs/LINK_LAYER.md) off, on over a clean link,
// and on under a uniform error storm.
//
// The perf contract (src/core/link_layer.cpp) is that every protocol entry
// point sits behind a single `link_protocol` branch in the injection and
// clock paths, so a default (protocol-off) configuration pays ~0 for the
// subsystem's existence.  The harness measures the off path twice, with
// the other modes interleaved between, and gates the two off runs against
// each other: any systematic protocol-off cost would show up as a
// repeatable gap, while an honest ~0 overhead leaves only measurement
// noise.  The clean-on and storm rows quantify the price actually paid
// when the machine is armed:
//
//   off        link_protocol = false (the shipping default)
//   clean      protocol on, zero injected errors: stamping, token debits
//              and returns, retry-buffer accounting
//   storm      protocol on, 20000 ppm uniform corruption: error-abort
//              entries, IRTRY exchanges, replays from the retry buffer
//   off_rerun  link_protocol = false again (noise bound for the gate)
//
//   build/bench/bench_link_retry [--json <path|->]
//
// Scale knobs (env): HMCSIM_LINKRETRY_REQUESTS, HMCSIM_LINKRETRY_REPEATS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace hmcsim::bench {
namespace {

enum class Mode : int { Off, Clean, Storm, OffRerun };

struct Measurement {
  std::string name;
  u64 completed{0};
  u64 errors{0};
  u64 link_retries{0};
  u64 link_abort_entries{0};
  u64 link_tokens_debited{0};
  double seconds{0.0};

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

DeviceConfig bench_device(Mode mode) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  if (mode == Mode::Clean || mode == Mode::Storm) {
    dc.link_protocol = true;
    dc.link_retry_limit = 8;
    dc.link_retry_latency = 4;
  }
  if (mode == Mode::Storm) dc.link_error_rate_ppm = 20'000;
  return dc;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Off: return "off";
    case Mode::Clean: return "clean";
    case Mode::Storm: return "storm";
    default: return "off_rerun";
  }
}

using SteadyClock = std::chrono::steady_clock;

Measurement run_mode(Mode mode, u64 requests, u64 repeats) {
  Measurement m;
  m.name = mode_name(mode);
  const DeviceConfig dc = bench_device(mode);
  Simulator sim = make_sim_or_die(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = 64;
  RandomAccessGenerator gen(gc);

  // Time each repeat separately and score the best one: the figure of
  // merit is the machine's steady-state throughput, not allocator or
  // frequency-scaling warmup transients.
  double best = 0.0;
  for (u64 rep = 0; rep < repeats; ++rep) {
    DriverConfig dcfg;
    dcfg.total_requests = requests;
    HostDriver driver(sim, gen, dcfg);
    const auto start = SteadyClock::now();
    const DriverResult r = driver.run();
    const double secs =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    if (rep == 0 || secs < best) best = secs;
    m.completed += r.completed;
    m.errors += r.errors;
  }
  m.seconds = best * static_cast<double>(repeats);
  const DeviceStats s = sim.total_stats();
  m.link_retries = s.link_retries;
  m.link_abort_entries = s.link_abort_entries;
  m.link_tokens_debited = s.link_tokens_debited;
  return m;
}

void print_measurement(const Measurement& m) {
  std::printf("%-10s %10llu reqs | %10.0f req/s | errors %llu | "
              "aborts %llu | replays %llu\n",
              m.name.c_str(), static_cast<unsigned long long>(m.completed),
              m.requests_per_sec(),
              static_cast<unsigned long long>(m.errors),
              static_cast<unsigned long long>(m.link_abort_entries),
              static_cast<unsigned long long>(m.link_retries));
}

/// Percentage gap of `b` below `a` (positive = b slower), symmetric-safe.
double pct_gap(double a, double b) {
  const double hi = std::max(a, b);
  return hi > 0.0 ? 100.0 * (hi - std::min(a, b)) / hi : 0.0;
}

void write_json(std::ostream& os, const std::vector<Measurement>& ms,
                double off_gap_pct, double clean_overhead_pct) {
  os << "{\n  \"bench\": \"bench_link_retry\",\n  \"modes\": [\n";
  for (usize i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    os << "   {\"name\": \"" << m.name << "\", \"completed\": " << m.completed
       << ", \"errors\": " << m.errors
       << ", \"link_retries\": " << m.link_retries
       << ", \"link_abort_entries\": " << m.link_abort_entries
       << ", \"link_tokens_debited\": " << m.link_tokens_debited
       << ", \"seconds\": " << m.seconds
       << ", \"requests_per_sec\": " << m.requests_per_sec() << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"protocol_off_overhead_pct\": " << off_gap_pct
     << ",\n  \"protocol_clean_overhead_pct\": " << clean_overhead_pct
     << "\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  const u64 requests = env_u64("HMCSIM_LINKRETRY_REQUESTS", 1 << 15);
  const u64 repeats = env_u64("HMCSIM_LINKRETRY_REPEATS", 3);

  std::vector<Measurement> ms;
  // Untimed warmup: fault in the storage arena and let the CPU settle so
  // the first timed mode is not charged for process bring-up.
  (void)run_mode(Mode::Off, std::min<u64>(requests, 8192), 1);
  ms.push_back(run_mode(Mode::Off, requests, repeats));
  ms.push_back(run_mode(Mode::Clean, requests, repeats));
  ms.push_back(run_mode(Mode::Storm, requests, repeats));
  ms.push_back(run_mode(Mode::OffRerun, requests, repeats));
  for (const Measurement& m : ms) print_measurement(m);

  const double off_gap_pct =
      pct_gap(ms[0].requests_per_sec(), ms[3].requests_per_sec());
  const double clean_overhead_pct =
      ms[1].requests_per_sec() > 0.0
          ? 100.0 * (ms[0].requests_per_sec() / ms[1].requests_per_sec() -
                     1.0)
          : 0.0;
  std::printf("protocol-off overhead: %.2f%% (two off runs; gate: < 10%%)\n"
              "protocol-on clean overhead: %.2f%%\n",
              off_gap_pct, clean_overhead_pct);

  int rc = 0;
  // Gate 1: the off path carries no protocol cost — the two off runs
  // bracket the other modes, so a systematic slowdown would repeat, not
  // average out.
  if (off_gap_pct >= 10.0) {
    std::fprintf(stderr,
                 "FAIL: protocol-off runs differ by %.2f%% (>= 10%%); the "
                 "off path is paying for the link layer\n",
                 off_gap_pct);
    rc = 1;
  }
  // Gate 2: the harness measured real work — every mode retired the full
  // request count, the clean mode cycled tokens, and the storm mode
  // actually exercised the abort machine.
  for (const Measurement& m : ms) {
    if (m.completed != requests * repeats) {
      std::fprintf(stderr, "FAIL %s: %llu of %llu requests retired\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(m.completed),
                   static_cast<unsigned long long>(requests * repeats));
      rc = 1;
    }
  }
  if (ms[1].link_tokens_debited == 0 || ms[1].errors != 0) {
    std::fprintf(stderr, "FAIL clean: token loop never engaged cleanly\n");
    rc = 1;
  }
  if (ms[2].link_abort_entries == 0 || ms[2].link_retries == 0) {
    std::fprintf(stderr, "FAIL storm: abort machine never engaged\n");
    rc = 1;
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, ms, off_gap_pct, clean_overhead_pct);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 2;
      }
      write_json(os, ms, off_gap_pct, clean_overhead_pct);
    }
  }
  return rc;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
