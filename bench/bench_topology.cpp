// Figure 1 topology study: simple, chain, ring, mesh and 2-D torus device
// networks under the random-access workload, reporting routed hop counts,
// request latency and completion cycles per topology.
//
// Env knobs: HMCSIM_TOPO_REQUESTS (default 2^14).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct TopoCase {
  std::string name;
  Topology topo;
  u32 devices;
  u32 links;
};

void run_case(const TopoCase& tc, u64 requests) {
  SimConfig sc;
  sc.num_devices = tc.devices;
  DeviceConfig dc;
  dc.num_links = tc.links;
  dc.banks_per_vault = 8;
  dc.model_data = false;
  sc.device = dc;

  Simulator sim;
  std::string diag;
  Topology topo = tc.topo;
  if (!ok(sim.init(sc, std::move(topo), &diag))) {
    std::fprintf(stderr, "%s: init failed: %s\n", tc.name.c_str(),
                 diag.c_str());
    return;
  }

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = 64;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.targets = TargetPolicy::RoundRobinCubes;  // load every cube equally
  dcfg.max_cycles = 100u * 1000 * 1000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();

  const DeviceStats total = sim.total_stats();
  u32 max_host_distance = 0;
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    max_host_distance =
        std::max(max_host_distance, *sim.topology().host_distance(CubeId{d}));
  }
  std::printf("%-10s %4u cubes %9llu cycles  lat mean %7.1f  max %6llu  "
              "hops %9llu  depth %u\n",
              tc.name.c_str(), sim.num_devices(),
              static_cast<unsigned long long>(r.cycles), r.latency.mean(),
              static_cast<unsigned long long>(r.latency.max),
              static_cast<unsigned long long>(total.route_hops),
              max_host_distance);
}

}  // namespace

int main() {
  const u64 requests = env_u64("HMCSIM_TOPO_REQUESTS", u64{1} << 14);
  std::printf("=== Figure 1 topologies under %llu random requests "
              "(spread across all cubes) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-10s %10s %16s %16s %12s %15s\n", "topology", "", "", "",
              "", "");

  std::string err;
  std::vector<TopoCase> cases;
  cases.push_back({"simple", make_simple(4, &err), 1, 4});
  cases.push_back({"chain", make_chain(4, 4, 2, 1, &err), 4, 4});
  cases.push_back({"ring", make_ring(6, 4, 2, &err), 6, 4});
  cases.push_back({"mesh", make_mesh(2, 3, 4, 2, &err), 6, 4});
  cases.push_back({"torus2d", make_torus2d(2, 3, 8, 2, &err), 6, 8});
  for (const auto& tc : cases) {
    if (tc.topo.num_devices() == 0) {
      std::fprintf(stderr, "%s: build failed: %s\n", tc.name.c_str(),
                   err.c_str());
      continue;
    }
    run_case(tc, requests);
  }

  std::printf("\nexpected shape: the chain is throughput-bound by its "
              "narrow trunk (most cycles);\nspreading load over more cubes "
              "cuts per-request latency versus the single-cube\nbaseline; "
              "and the torus' wrap links cut route hops, diameter and "
              "latency below the\nmesh at equal cube count.\n");
  return 0;
}
