// Ablation A10: bank row-buffer policy.
//
// The paper's flat bank-busy model is a closed-page abstraction.  Real
// stacked DRAM keeps rows open; whether that helps depends entirely on the
// access pattern.  This bench runs sequential and random traffic under
// closed-page (flat tRC = 16), and open-page with a 6-cycle hit / 22-cycle
// miss split, and reports cycles plus the measured row hit rate.
//
// Env knobs: HMCSIM_ROWPOL_REQUESTS (default 2^16).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_ROWPOL_REQUESTS", u64{1} << 16);
  std::printf("=== Ablation A10: row-buffer policy (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-12s %-10s %10s %10s %12s\n", "policy", "workload", "cycles",
              "hit_rate", "lat_mean");

  for (const auto policy : {RowPolicy::ClosedPage, RowPolicy::OpenPage}) {
    for (const bool sequential : {true, false}) {
      DeviceConfig dc = table1_config_4link_8bank();
      dc.capacity_bytes = 0;
      dc.row_policy = policy;
      Simulator sim = make_sim_or_die(dc);

      GeneratorConfig gc;
      gc.capacity_bytes = dc.derived_capacity();
      gc.request_bytes = 64;
      DriverConfig dcfg;
      dcfg.total_requests = requests;
      dcfg.max_cycles = 200u * 1000 * 1000;
      DriverResult r;
      if (sequential) {
        StreamGenerator gen(gc);
        r = HostDriver(sim, gen, dcfg).run();
      } else {
        RandomAccessGenerator gen(gc);
        r = HostDriver(sim, gen, dcfg).run();
      }
      const DeviceStats s = sim.total_stats();
      const u64 row_events = s.row_hits + s.row_misses;
      std::printf("%-12s %-10s %10llu %9.1f%% %12.1f\n",
                  policy == RowPolicy::ClosedPage ? "closed-page"
                                                  : "open-page",
                  sequential ? "stream" : "random",
                  static_cast<unsigned long long>(r.cycles),
                  row_events == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(s.row_hits) /
                            static_cast<double>(row_events),
                  r.latency.mean());
    }
  }

  std::printf("\nexpected shape: open-page rewards streams (high hit rate, "
              "~2-3x fewer cycles than\nclosed-page) and punishes uniform "
              "random traffic (near-zero hits, every access pays\nthe "
              "precharge+activate miss path) — the classic row-buffer "
              "locality trade-off the\npaper's flat model abstracts away.\n");
  return 0;
}
