// Ablation A1: queue-depth sensitivity.
//
// The paper fixes 128 crossbar arbitration slots and 64 vault slots for its
// experiments (§VI.A) but makes both user-configurable (requirement 3,
// "Flexible Queuing").  This sweep shows where the paper's choice sits on
// the depth/throughput curve: beyond modest depths the extra slots stop
// buying cycles and only add occupancy.
//
// Env knobs: HMCSIM_QDEPTH_REQUESTS (default 2^16).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_QDEPTH_REQUESTS", u64{1} << 16);
  std::printf("=== Ablation A1: queue depth sweep (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%10s %11s %10s %14s %14s %12s %10s %10s\n", "xbar_depth",
              "vault_depth", "cycles", "xbar_stalls", "send_stalls",
              "lat_mean", "xbar_fill", "vault_fill");

  const u32 xbar_depths[] = {2, 8, 32, 128, 512};
  const u32 vault_depths[] = {1, 4, 16, 64, 256};
  for (usize i = 0; i < 5; ++i) {
    DeviceConfig dc = table1_config_4link_8bank();
    dc.capacity_bytes = 0;  // derive
    dc.xbar_depth = xbar_depths[i];
    dc.vault_depth = vault_depths[i];
    Simulator sim = make_sim_or_die(dc);

    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    gc.request_bytes = 64;
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = requests;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    const DeviceStats s = sim.total_stats();

    // High-water fill fractions: how much of each queue class the workload
    // actually used.
    double xbar_fill = 0, vault_fill = 0;
    for (const auto& link : sim.device(0).links) {
      xbar_fill += static_cast<double>(link.rqst.stats().high_water) /
                   static_cast<double>(link.rqst.capacity());
    }
    for (const auto& vault : sim.device(0).vaults) {
      vault_fill += static_cast<double>(vault.rqst.stats().high_water) /
                    static_cast<double>(vault.rqst.capacity());
    }
    xbar_fill /= 4.0;
    vault_fill /= 16.0;

    std::printf("%10u %11u %10llu %14llu %14llu %12.1f %9.0f%% %9.0f%%\n",
                xbar_depths[i], vault_depths[i],
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(s.xbar_rqst_stalls),
                static_cast<unsigned long long>(r.send_stalls),
                r.latency.mean(), xbar_fill * 100, vault_fill * 100);
  }

  std::printf("\nexpected shape: throughput saturates once the vault queues "
              "cover the bank busy\nwindow; deeper queues past the paper's "
              "128/64 point mostly add queueing latency.\n");
  return 0;
}
