// Observability overhead guard.
//
// The tracer's hot-path contract is that a disabled trace level costs one
// branch per would-be event, and that the always-on lifecycle stamping
// (plain cycle stores on queue entries) is invisible next to the
// simulation work itself.  This harness measures the same random-access
// run under three configurations:
//
//   baseline   TraceLevel::Off, no sinks, no lifecycle observers
//   gated      TraceLevel::Off with a sink attached (gate branches taken)
//   lifecycle  a LifecycleSink observer attached (per-packet aggregation)
//
// and fails (exit 1) if either instrumented run exceeds the baseline by
// more than the tolerance (default 50%, HMCSIM_OVERHEAD_TOLERANCE_PCT to
// override — timing on loaded CI boxes is noisy, so the default is
// deliberately generous; the regressions this guards against are 5-50x).
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_common.hpp"
#include "trace/lifecycle.hpp"
#include "trace/sink.hpp"

namespace hmcsim::bench {
namespace {

using Clock = std::chrono::steady_clock;

double run_once(u64 requests, bool attach_sink, bool attach_lifecycle,
                u64* completed) {
  Simulator sim = make_sim_or_die(table1_config_4link_8bank());
  auto counting = std::make_shared<CountingSink>();
  if (attach_sink) {
    sim.tracer().add_sink(counting);
    sim.tracer().set_level(TraceLevel::Off);
  }
  auto lifecycle = std::make_shared<LifecycleSink>();
  if (attach_lifecycle) sim.add_lifecycle_observer(lifecycle);

  const auto start = Clock::now();
  const DriverResult result = run_random_access(sim, requests);
  const auto stop = Clock::now();
  *completed = result.completed;
  if (attach_sink && counting->total() != 0) {
    std::fprintf(stderr, "FAIL: %llu records leaked past TraceLevel::Off\n",
                 static_cast<unsigned long long>(counting->total()));
    std::exit(1);
  }
  if (attach_lifecycle && lifecycle->completed() != result.completed) {
    std::fprintf(stderr, "FAIL: lifecycle saw %llu of %llu packets\n",
                 static_cast<unsigned long long>(lifecycle->completed()),
                 static_cast<unsigned long long>(result.completed));
    std::exit(1);
  }
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall time: the minimum is the least noise-contaminated
/// estimate of the true cost.
double best_of(int reps, u64 requests, bool sink, bool lifecycle) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    u64 completed = 0;
    const double t = run_once(requests, sink, lifecycle, &completed);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace
}  // namespace hmcsim::bench

int main() {
  using namespace hmcsim::bench;
  const hmcsim::u64 requests = env_u64("HMCSIM_OVERHEAD_REQUESTS", 1u << 16);
  const hmcsim::u64 tolerance_pct =
      env_u64("HMCSIM_OVERHEAD_TOLERANCE_PCT", 50);
  const int reps = static_cast<int>(env_u64("HMCSIM_OVERHEAD_REPS", 3));

  {  // warm-up: fault in code and allocator state outside the timed runs
    hmcsim::u64 completed = 0;
    (void)run_once(requests / 4, false, false, &completed);
  }

  const double baseline = best_of(reps, requests, false, false);
  const double gated = best_of(reps, requests, true, false);
  const double lifecycle = best_of(reps, requests, false, true);

  std::printf("# trace/lifecycle overhead, %llu requests, best of %d\n",
              static_cast<unsigned long long>(requests), reps);
  std::printf("%-28s %10.4fs %8s\n", "baseline (off, unobserved)", baseline,
              "-");
  std::printf("%-28s %10.4fs %+7.1f%%\n", "gated (off, sink attached)", gated,
              (gated / baseline - 1.0) * 100.0);
  std::printf("%-28s %10.4fs %+7.1f%%\n", "lifecycle sink attached",
              lifecycle, (lifecycle / baseline - 1.0) * 100.0);

  const double bound = 1.0 + static_cast<double>(tolerance_pct) / 100.0;
  if (gated > baseline * bound || lifecycle > baseline * bound) {
    std::fprintf(stderr,
                 "FAIL: observability overhead exceeds %llu%% tolerance\n",
                 static_cast<unsigned long long>(tolerance_pct));
    return 1;
  }
  std::printf("OK: overhead within %llu%% of baseline\n",
              static_cast<unsigned long long>(tolerance_pct));
  return 0;
}
