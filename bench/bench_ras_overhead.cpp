// RAS cost microbenchmarks (google-benchmark): what ECC, scrubbing, vault
// degradation, and the watchdog cost — and, critically, what they cost when
// switched OFF.
//
// The perf contract (src/core/ras.cpp) is that every RAS entry point sits
// behind a single config-gated branch in the clock engine, so a default
// configuration pays ~0 for the subsystem's existence.  Compare
// BM_RequestsRas/off against BM_RequestsRas/ecc+scrub+watchdog to see the
// enabled cost, and against bench_sim_speed's BM_SimulatedRequests history
// to confirm the off-path did not regress.
#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

enum RasMode : int { kOff = 0, kEcc = 1, kEccScrub = 2, kFullRas = 3 };

DeviceConfig bench_device(RasMode mode) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  // model_data on for every mode: ECC decode only exists for modeled data,
  // and keeping it constant isolates the RAS knobs themselves.
  dc.model_data = true;
  if (mode >= kEcc) {
    dc.dram_sbe_rate_ppm = 10'000;  // ~1% of accesses plant a latent flip
    dc.dram_dbe_rate_ppm = 100;
  }
  if (mode >= kEccScrub) {
    dc.scrub_interval_cycles = 64;
    dc.scrub_window_bytes = 1 << 20;
  }
  if (mode >= kFullRas) {
    dc.vault_fail_threshold = 1'000'000;  // armed but never tripping
    dc.vault_remap = true;
    dc.watchdog_cycles = 100'000;
  }
  return dc;
}

const char* mode_name(RasMode mode) {
  switch (mode) {
    case kOff: return "off";
    case kEcc: return "ecc";
    case kEccScrub: return "ecc+scrub";
    default: return "ecc+scrub+watchdog";
  }
}

/// Saturating random traffic; items/sec is retired requests per host
/// second.  Arg 0 selects the RAS mode.
void BM_RequestsRas(benchmark::State& state) {
  const RasMode mode = static_cast<RasMode>(state.range(0));
  state.SetLabel(mode_name(mode));
  Simulator sim;
  const DeviceConfig dc = bench_device(mode);
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    HostDriver driver(sim, gen, dcfg);
    retired += driver.run().completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
}
BENCHMARK(BM_RequestsRas)
    ->Arg(kOff)
    ->Arg(kEcc)
    ->Arg(kEccScrub)
    ->Arg(kFullRas)
    ->Unit(benchmark::kMillisecond);

/// Idle-cycle floor with and without the full RAS stack armed: the gap is
/// the per-cycle price of scrub scheduling + watchdog fingerprinting.
void BM_IdleCycleRas(benchmark::State& state) {
  const RasMode mode = static_cast<RasMode>(state.range(0));
  state.SetLabel(mode_name(mode));
  Simulator sim;
  if (!ok(sim.init_simple(bench_device(mode)))) {
    state.SkipWithError("init failed");
    return;
  }
  for (auto _ : state) {
    sim.clock();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IdleCycleRas)->Arg(kOff)->Arg(kFullRas);

/// Host-side retry machinery cost when armed but idle: a generous timeout
/// never trips, so this measures the per-step bookkeeping alone.
void BM_DriverTimeoutBookkeeping(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  state.SetLabel(armed ? "timeout-armed" : "timeout-off");
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    if (armed) {
      dcfg.response_timeout_cycles = 1'000'000;
      dcfg.retry_limit = 4;
      dcfg.retry_backoff_cycles = 16;
    }
    HostDriver driver(sim, gen, dcfg);
    retired += driver.run().completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
}
BENCHMARK(BM_DriverTimeoutBookkeeping)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hmcsim

BENCHMARK_MAIN();
