// Ablation A3: host-side link routing policy.
//
// §VI.B's corollary: "locality-aware host devices have the potential to
// reduce memory latency and reduce internal memory device contention in
// order to make most efficient use of the available bandwidth."  This bench
// compares the paper's naive round-robin injection against a quad-local
// policy that injects each request on the link closest to its destination
// vault.
//
// Env knobs: HMCSIM_ROUTING_REQUESTS (default 2^17).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_ROUTING_REQUESTS", u64{1} << 17);
  std::printf("=== Ablation A3: link injection policy (%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-22s %-15s %10s %16s %12s %10s\n", "config", "policy",
              "cycles", "latency_events", "lat_mean", "lat_max");

  for (const auto& nc : table1_configs()) {
    for (const auto policy :
         {InjectionPolicy::RoundRobin, InjectionPolicy::LocalityAware}) {
      Simulator sim = make_sim_or_die(nc.config);
      const DriverResult r = run_random_access(sim, requests, 0.5, policy);
      std::printf("%-22s %-15s %10llu %16llu %12.1f %10llu\n",
                  nc.label.c_str(),
                  policy == InjectionPolicy::RoundRobin ? "round-robin"
                                                        : "locality-aware",
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(
                      sim.total_stats().latency_penalties),
                  r.latency.mean(),
                  static_cast<unsigned long long>(r.latency.max));
    }
  }

  std::printf("\nexpected shape: locality-aware injection slashes the "
              "routed-latency penalty count\n(round-robin mis-places ~3/4 "
              "of requests) and trims mean latency, confirming the\npaper's "
              "corollary.\n");
  return 0;
}
