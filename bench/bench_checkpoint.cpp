// Checkpointing cost harness: host-side requests/second with periodic
// auto-checkpointing off, on at the default 10k-cycle cadence, and off
// again — plus the wall time of one save and one restore.
//
// The perf contract (docs/FORMATS.md §5) is that crash consistency is a
// deployment choice, not a tax on every run: the off path pays nothing
// (one integer compare per drive-loop iteration), and the default cadence
// — a rotated generation every 10000 device cycles, written atomically
// through io/atomic_file.hpp — stays under a 5% throughput cost on a busy
// random-access workload.  The harness measures the off path twice with
// the checkpointing mode between, and gates:
//
//   off         no checkpoint directory (the shipping default)
//   ckpt_10k    a generation every 10000 cycles, keep 3, into a temp dir
//   off_rerun   off again (noise bound for the off gate)
//
// Gates: the two off runs within 2% of each other, and ckpt_10k within 5%
// of the off baseline.
//
//   build/bench/bench_checkpoint [--json <path|->]
//
// Scale knobs (env): HMCSIM_CKPTBENCH_REQUESTS, HMCSIM_CKPTBENCH_REPEATS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.hpp"

namespace hmcsim::bench {
namespace {

constexpr u64 kInterval = 10000;
constexpr u32 kKeep = 3;

enum class Mode : int { Off, Ckpt, OffRerun };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Off: return "off";
    case Mode::Ckpt: return "ckpt_10k";
    default: return "off_rerun";
  }
}

struct Measurement {
  std::string name;
  u64 completed{0};
  u64 errors{0};
  u64 checkpoints_written{0};
  double seconds{0.0};

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

struct ModeState {
  Mode mode;
  Measurement m;
  Simulator sim;
  RandomAccessGenerator gen;
  std::string dir;  // empty = no checkpointing

  ModeState(Mode mode_, const DeviceConfig& dc, const GeneratorConfig& gc,
            std::string dir_)
      : mode(mode_), sim(make_sim_or_die(dc)), gen(gc),
        dir(std::move(dir_)) {
    m.name = mode_name(mode_);
  }
};

using SteadyClock = std::chrono::steady_clock;

/// One timed burst: the tools/hmcsim_run drive loop, generations written
/// at every kInterval boundary when a directory is set.
double timed_burst(ModeState& st, u64 requests) {
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  HostDriver driver(st.sim, st.gen, dcfg);
  DriverResult r;
  const auto start = SteadyClock::now();
  if (st.dir.empty()) {
    while (driver.step(r)) {}
  } else {
    u64 next_gen = st.m.checkpoints_written;
    u64 next_ckpt = (st.sim.now() / kInterval + 1) * kInterval;
    while (driver.step(r)) {
      if (st.sim.now() < next_ckpt) continue;
      CheckpointError err;
      if (!ok(st.sim.save_checkpoint_file(
              checkpoint_generation_path(st.dir, next_gen), &err,
              save_host_state(driver, r)))) {
        std::fprintf(stderr, "checkpoint write failed: %s\n",
                     err.message().c_str());
        std::exit(1);
      }
      ++next_gen;
      prune_checkpoint_generations(st.dir, kKeep);
      next_ckpt = (st.sim.now() / kInterval + 1) * kInterval;
    }
    st.m.checkpoints_written = next_gen;
  }
  driver.finish(r);
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  st.m.completed += r.completed;
  st.m.errors += r.errors;
  return secs;
}

void print_measurement(const Measurement& m) {
  std::printf("%-10s %10llu reqs | %10.0f req/s | %llu checkpoints\n",
              m.name.c_str(), static_cast<unsigned long long>(m.completed),
              m.requests_per_sec(),
              static_cast<unsigned long long>(m.checkpoints_written));
}

double pct_gap(double a, double b) {
  const double hi = std::max(a, b);
  return hi > 0.0 ? 100.0 * (hi - std::min(a, b)) / hi : 0.0;
}

void write_json(std::ostream& os, const std::vector<Measurement>& ms,
                double off_gap_pct, double on_overhead_pct,
                double save_ms, double restore_ms, u64 checkpoint_bytes) {
  os << "{\n  \"bench\": \"bench_checkpoint\",\n  \"interval_cycles\": "
     << kInterval << ",\n  \"modes\": [\n";
  for (usize i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    os << "   {\"name\": \"" << m.name << "\", \"completed\": " << m.completed
       << ", \"errors\": " << m.errors
       << ", \"checkpoints_written\": " << m.checkpoints_written
       << ", \"seconds\": " << m.seconds
       << ", \"requests_per_sec\": " << m.requests_per_sec() << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"checkpoint_off_overhead_pct\": " << off_gap_pct
     << ",\n  \"checkpoint_on_overhead_pct\": " << on_overhead_pct
     << ",\n  \"save_ms\": " << save_ms
     << ",\n  \"restore_ms\": " << restore_ms
     << ",\n  \"checkpoint_bytes\": " << checkpoint_bytes << "\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  // Short bursts, many interleaved repeats: scheduler noise on shared
  // hosts lasts whole bursts, so best-of needs a deep repeat pool far more
  // than it needs long individual runs.
  const u64 requests = env_u64("HMCSIM_CKPTBENCH_REQUESTS", 1 << 16);
  const u64 repeats = env_u64("HMCSIM_CKPTBENCH_REPEATS", 25);

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("hmcsim_ckptbench_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  const DeviceConfig dc = [] {
    DeviceConfig d = table1_config_4link_8bank();
    d.capacity_bytes = 0;
    d.model_data = false;
    return d;
  }();
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = 64;

  std::vector<ModeState> states;
  states.reserve(3);
  states.emplace_back(Mode::Off, dc, gc, "");
  states.emplace_back(Mode::Ckpt, dc, gc, dir.string());
  states.emplace_back(Mode::OffRerun, dc, gc, "");

  // Untimed warmup, then interleaved best-of rounds (same discipline as
  // bench_profile_overhead: repeatable gaps are systematic cost).
  for (ModeState& st : states) {
    (void)timed_burst(st, std::min<u64>(requests, 8192));
    st.m = Measurement{};
    st.m.name = mode_name(st.mode);
  }
  std::vector<double> best(states.size(), 0.0);
  for (u64 rep = 0; rep < repeats; ++rep) {
    for (usize i = 0; i < states.size(); ++i) {
      const double secs = timed_burst(states[i], requests);
      if (rep == 0 || secs < best[i]) best[i] = secs;
    }
  }
  std::vector<Measurement> ms;
  for (usize i = 0; i < states.size(); ++i) {
    states[i].m.seconds = best[i] * static_cast<double>(repeats);
    ms.push_back(states[i].m);
  }
  for (const Measurement& m : ms) print_measurement(m);

  // Single save / restore wall time on the busy end-state simulator.
  Simulator& busy = states[1].sim;
  const std::string one = (dir / "single.bin").string();
  CheckpointError err;
  auto t0 = SteadyClock::now();
  if (!ok(busy.save_checkpoint_file(one, &err))) {
    std::fprintf(stderr, "save failed: %s\n", err.message().c_str());
    return 1;
  }
  const double save_ms =
      std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
          .count();
  const u64 checkpoint_bytes = fs::file_size(one);
  Simulator restored;
  t0 = SteadyClock::now();
  if (!ok(restored.restore_checkpoint_file(one, &err))) {
    std::fprintf(stderr, "restore failed: %s\n", err.message().c_str());
    return 1;
  }
  const double restore_ms =
      std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
          .count();
  std::printf("save: %.2f ms, restore: %.2f ms (%llu bytes)\n", save_ms,
              restore_ms, static_cast<unsigned long long>(checkpoint_bytes));

  const double off_gap_pct =
      pct_gap(ms[0].requests_per_sec(), ms[2].requests_per_sec());
  const double off_baseline =
      0.5 * (ms[0].requests_per_sec() + ms[2].requests_per_sec());
  const double on_overhead_pct =
      ms[1].requests_per_sec() > 0.0
          ? 100.0 * (off_baseline / ms[1].requests_per_sec() - 1.0)
          : 0.0;
  std::printf("checkpoint-off overhead: %.2f%% (two off runs; gate: < 2%%)\n"
              "checkpoint-on overhead: %.2f%% at %llu-cycle cadence "
              "(gate: < 5%%)\n",
              off_gap_pct, on_overhead_pct,
              static_cast<unsigned long long>(kInterval));

  int rc = 0;
  if (off_gap_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: checkpoint-off runs differ by %.2f%% (>= 2%%); the "
                 "off path is paying for the checkpoint layer\n",
                 off_gap_pct);
    rc = 1;
  }
  if (on_overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: auto-checkpoint overhead %.2f%% (>= 5%%) at the "
                 "default cadence\n",
                 on_overhead_pct);
    rc = 1;
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, ms, off_gap_pct, on_overhead_pct, save_ms,
                 restore_ms, checkpoint_bytes);
    } else {
      std::ofstream out(json_path);
      write_json(out, ms, off_gap_pct, on_overhead_pct, save_ms, restore_ms,
                 checkpoint_bytes);
    }
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return rc;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
