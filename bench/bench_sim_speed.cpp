// Simulator performance microbenchmarks (google-benchmark): how fast the
// six-stage engine itself runs on the host.
//
// The paper notes its full-verbosity runs produced 16-40 GB traces and
// multi-million-cycle simulations; host-side throughput decides whether
// full-scale experiments are practical.  These benchmarks measure the
// engine under the Table I workload at steady state, with and without
// tracing, plus the idle-cycle floor.
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "core/simulator.hpp"
#include "trace/series.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

/// Steady-state simulated-request throughput: requests retired per second
/// of host time, under saturating random traffic.
void BM_SimulatedRequests(benchmark::State& state) {
  DeviceConfig dc = state.range(0) == 8 ? table1_config_8link_16bank()
                                        : table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    retired += r.completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
}
BENCHMARK(BM_SimulatedRequests)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// The same with Events-level tracing into the Figure-5 aggregator.
void BM_SimulatedRequestsTraced(benchmark::State& state) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  sim.tracer().set_level(TraceLevel::Events);
  sim.tracer().add_sink(
      std::make_shared<VaultSeriesSink>(dc.num_vaults(), 256));
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    HostDriver driver(sim, gen, dcfg);
    retired += driver.run().completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
}
BENCHMARK(BM_SimulatedRequestsTraced)->Unit(benchmark::kMillisecond);

/// Idle-cycle floor: clock() on an empty device.
void BM_IdleCycle(benchmark::State& state) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  for (auto _ : state) {
    sim.clock();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IdleCycle);

/// Checkpoint save throughput at a loaded state.
void BM_CheckpointSave(benchmark::State& state) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1 << 14;
  HostDriver driver(sim, gen, dcfg);
  (void)driver.run();

  usize bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    benchmark::DoNotOptimize(sim.save_checkpoint(os));
    bytes += os.str().size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointSave);

}  // namespace
}  // namespace hmcsim

BENCHMARK_MAIN();
