// Ablation A8: activity-based power estimation across the Table I
// configurations and injection policies.
//
// The 2014 paper defers power to future work; this bench exercises the
// estimation layer the successor simulator grew, showing (i) how average
// power scales with links/banks, (ii) the energy split between DRAM,
// logic, SERDES and static, and (iii) that locality-aware injection saves
// crossbar energy at equal work.
//
// Env knobs: HMCSIM_POWER_REQUESTS (default 2^17).
#include <cstdio>

#include "analysis/power.hpp"
#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_POWER_REQUESTS", u64{1} << 17);
  std::printf("=== Ablation A8: energy estimation (%llu x 64B random "
              "requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-22s %8s %9s %9s %9s %9s %8s %9s\n", "config", "avg_W",
              "dram_uJ", "logic_uJ", "link_uJ", "static_uJ", "pJ/B",
              "GB/s");

  for (const auto& nc : table1_configs()) {
    Simulator sim = make_sim_or_die(nc.config);
    const DriverResult r = run_random_access(sim, requests);
    const PowerReport p = estimate_power(sim);
    const double gbs =
        static_cast<double>(requests) * 64.0 /
        (static_cast<double>(r.cycles) / 1.25);  // bytes / ns
    std::printf("%-22s %8.2f %9.1f %9.1f %9.1f %9.1f %8.1f %9.1f\n",
                nc.label.c_str(), p.average_w, p.dram_nj / 1000,
                p.logic_nj / 1000, p.link_nj / 1000, p.static_nj / 1000,
                p.pj_per_byte, gbs);
  }

  std::printf("\nround-robin vs locality-aware injection "
              "(8-link/16-bank):\n");
  for (const auto policy :
       {InjectionPolicy::RoundRobin, InjectionPolicy::LocalityAware}) {
    Simulator sim = make_sim_or_die(table1_config_8link_16bank());
    (void)run_random_access(sim, requests, 0.5, policy);
    const PowerReport p = estimate_power(sim);
    std::printf("  %-15s total %9.1f uJ, avg %6.2f W, %6.1f pJ/B\n",
                policy == InjectionPolicy::RoundRobin ? "round-robin"
                                                      : "locality-aware",
                p.total_nj / 1000, p.average_w, p.pj_per_byte);
  }

  std::printf("\nexpected shape: dynamic energy (DRAM+logic+link) is fixed "
              "by the workload, so the\nfaster configurations amortize "
              "static energy over less time — higher average power\nbut "
              "lower energy per byte.  The per-byte figure sits near the "
              "published ~10.5 pJ/bit\n(~84 pJ/B) HMC device budget plus "
              "static overhead.\n");
  return 0;
}
