// Ablation A6: vault controller scheduling.
//
// The spec's weak ordering explicitly lets vaults reorder queued packets
// "in order to make most efficient use of bandwidth to and from the
// respective vault banks" (§III.C).  This bench quantifies that freedom:
// the default bank-ready scheduler retires any queued request whose bank is
// idle, while the StrictFifo ablation serves arrival order only, so one
// busy bank blocks the whole vault.
//
// Env knobs: HMCSIM_VSCHED_REQUESTS (default 2^17).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_VSCHED_REQUESTS", u64{1} << 17);
  std::printf("=== Ablation A6: vault scheduling (%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%-22s %-12s %10s %14s %12s\n", "config", "schedule", "cycles",
              "conflicts", "lat_mean");

  for (const auto& nc : table1_configs()) {
    Cycle bank_ready_cycles = 0;
    for (const auto schedule :
         {VaultSchedule::BankReady, VaultSchedule::StrictFifo}) {
      DeviceConfig dc = nc.config;
      dc.vault_schedule = schedule;
      Simulator sim = make_sim_or_die(dc);
      const DriverResult r = run_random_access(sim, requests);
      if (schedule == VaultSchedule::BankReady) bank_ready_cycles = r.cycles;
      std::printf("%-22s %-12s %10llu %14llu %12.1f\n", nc.label.c_str(),
                  schedule == VaultSchedule::BankReady ? "bank-ready"
                                                       : "strict-fifo",
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(
                      sim.total_stats().bank_conflicts),
                  r.latency.mean());
      if (schedule == VaultSchedule::StrictFifo && bank_ready_cycles != 0) {
        std::printf("%-22s %-12s %9.2fx reordering speedup\n", "", "",
                    static_cast<double>(r.cycles) /
                        static_cast<double>(bank_ready_cycles));
      }
    }
  }

  std::printf("\nexpected shape: with random bank targets, strict FIFO "
              "stalls every vault on its\nhead-of-line bank and loses "
              "several-fold throughput; the gap widens with more\nbanks "
              "per vault (more reordering opportunity).\n");
  return 0;
}
