// Fast-forward engine speedup harness: host-side cycles/second with the
// idle-cycle fast-forward engine off versus on, over workloads whose idle
// fraction makes skipping worthwhile.
//
// Two workload shapes, both with a live refresh schedule so the skip
// horizon is bounded by real maintenance events (see docs/INTERNALS.md):
//
//   sparse_gups  GUPS-style random updates at ~1% injection occupancy —
//                one drive-loop step followed by a fixed idle window.
//                This is the acceptance workload: fast-forward must be
//                >= 5x faster in wall-clock cycles/second.
//   bursty       alternating saturating bursts and long idle gaps, the
//                phased shape real host traces produce.
//
// Both runs of a pair simulate the identical machine (the differential
// suite proves bit-identity; this harness re-checks the retired count),
// so the ratio is pure host-time win.
//
//   build/bench/bench_fast_forward [--json <path|->]
//
// Scale knobs (env): HMCSIM_FF_REQUESTS, HMCSIM_FF_IDLE_CYCLES,
// HMCSIM_FF_BURSTS, HMCSIM_FF_GAP_CYCLES.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace hmcsim::bench {
namespace {

struct Measurement {
  Cycle cycles{0};
  u64 cycles_skipped{0};
  u64 completed{0};
  double seconds{0.0};

  double cycles_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

struct Pair {
  std::string name;
  Measurement off;
  Measurement on;

  double speedup() const {
    return off.seconds > 0.0 && on.cycles_per_sec() > 0.0
               ? on.cycles_per_sec() / off.cycles_per_sec()
               : 0.0;
  }
};

DeviceConfig bench_device(bool fast_forward) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  // A realistic maintenance schedule: the skip horizon is bounded by the
  // next staggered vault refresh, so fast-forward never coasts for free.
  dc.refresh_interval_cycles = 2048;
  dc.refresh_busy_cycles = 4;
  dc.fast_forward = fast_forward;
  return dc;
}

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// GUPS-style sparse updates: one drive-loop step, then `idle` clocks with
/// nothing in flight.  At the default idle window the link occupancy is
/// ~1%, i.e. the dominant cost with fast-forward off is staged idle work.
Measurement run_sparse(bool fast_forward, u64 requests, u32 idle) {
  Simulator sim = make_sim_or_die(bench_device(fast_forward));
  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.request_bytes = 64;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.max_outstanding_per_port = 1;
  HostDriver driver(sim, gen, dcfg);

  const auto start = SteadyClock::now();
  DriverResult r;
  bool live = true;
  while (live) {
    live = driver.step(r);
    for (u32 i = 0; i < idle; ++i) sim.clock();
  }
  Measurement m;
  m.seconds = seconds_since(start);
  m.cycles = sim.now();
  m.cycles_skipped = sim.cycles_skipped();
  m.completed = r.completed;
  return m;
}

/// Phased traffic: a saturating burst of requests, then a long idle gap,
/// repeated.  Fast-forward only helps in the gaps, so the speedup here is
/// the amortized (and smaller) real-trace figure.
Measurement run_bursty(bool fast_forward, u64 bursts, u64 burst_requests,
                       u32 gap) {
  Simulator sim = make_sim_or_die(bench_device(fast_forward));
  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.request_bytes = 64;
  RandomAccessGenerator gen(gc);

  const auto start = SteadyClock::now();
  Measurement m;
  for (u64 b = 0; b < bursts; ++b) {
    DriverConfig dcfg;
    dcfg.total_requests = burst_requests;
    HostDriver driver(sim, gen, dcfg);
    m.completed += driver.run().completed;
    for (u32 i = 0; i < gap; ++i) sim.clock();
  }
  m.seconds = seconds_since(start);
  m.cycles = sim.now();
  m.cycles_skipped = sim.cycles_skipped();
  return m;
}

void print_pair(const Pair& p) {
  const double skip_pct =
      p.on.cycles != 0
          ? 100.0 * static_cast<double>(p.on.cycles_skipped) /
                static_cast<double>(p.on.cycles)
          : 0.0;
  std::printf("%-12s %12llu cycles | off %10.0f cyc/s | on %10.0f cyc/s "
              "(%5.1f%% skipped) | speedup %.2fx\n",
              p.name.c_str(),
              static_cast<unsigned long long>(p.off.cycles),
              p.off.cycles_per_sec(), p.on.cycles_per_sec(), skip_pct,
              p.speedup());
}

void json_measurement(std::ostream& os, const char* key,
                      const Measurement& m) {
  os << "    \"" << key << "\": {\"cycles\": " << m.cycles
     << ", \"cycles_skipped\": " << m.cycles_skipped
     << ", \"completed\": " << m.completed << ", \"seconds\": " << m.seconds
     << ", \"cycles_per_sec\": " << m.cycles_per_sec() << "}";
}

void write_json(std::ostream& os, const std::vector<Pair>& pairs) {
  os << "{\n  \"bench\": \"bench_fast_forward\",\n  \"workloads\": [\n";
  for (usize i = 0; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    os << "   {\n    \"name\": \"" << p.name << "\",\n";
    json_measurement(os, "fast_forward_off", p.off);
    os << ",\n";
    json_measurement(os, "fast_forward_on", p.on);
    os << ",\n    \"speedup\": " << p.speedup() << "\n   }"
       << (i + 1 < pairs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  const u64 requests = env_u64("HMCSIM_FF_REQUESTS", 3000);
  const u32 idle =
      static_cast<u32>(env_u64("HMCSIM_FF_IDLE_CYCLES", 127));
  const u64 bursts = env_u64("HMCSIM_FF_BURSTS", 6);
  const u32 gap = static_cast<u32>(env_u64("HMCSIM_FF_GAP_CYCLES", 65536));

  std::vector<Pair> pairs;
  {
    Pair p;
    p.name = "sparse_gups";
    p.off = run_sparse(false, requests, idle);
    p.on = run_sparse(true, requests, idle);
    pairs.push_back(p);
  }
  {
    Pair p;
    p.name = "bursty";
    p.off = run_bursty(false, bursts, 4096, gap);
    p.on = run_bursty(true, bursts, 4096, gap);
    pairs.push_back(p);
  }

  int rc = 0;
  for (const Pair& p : pairs) {
    print_pair(p);
    // The skip must be pure execution strategy: identical retired work
    // and final clock, or the ratio above is measuring the wrong machine.
    if (p.off.completed != p.on.completed || p.off.cycles != p.on.cycles) {
      std::fprintf(stderr,
                   "FAIL %s: runs diverged (completed %llu vs %llu, "
                   "cycles %llu vs %llu)\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.off.completed),
                   static_cast<unsigned long long>(p.on.completed),
                   static_cast<unsigned long long>(p.off.cycles),
                   static_cast<unsigned long long>(p.on.cycles));
      rc = 1;
    }
    if (p.on.cycles_skipped == 0) {
      std::fprintf(stderr, "FAIL %s: fast-forward never engaged\n",
                   p.name.c_str());
      rc = 1;
    }
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, pairs);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 2;
      }
      write_json(os, pairs);
    }
  }
  return rc;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
