// Figure 5 reproduction: "HMC-Sim Random Access Simulation Results".
//
// The paper plots, per simulated clock cycle, five series for each of the
// four device configurations: bank conflicts, read requests and write
// requests within each vault, plus crossbar request stalls and routed
// latency-penalty events.  This harness reruns the §VI.A workload with full
// tracing into the VaultSeriesSink aggregator and prints a bucketed view of
// those series (the paper's 40 GB raw text traces condense to the same
// curves).
//
// Env knobs:
//   HMCSIM_FIG5_REQUESTS  request count (default 2^18)
//   HMCSIM_FIG5_BUCKETS   number of time buckets printed (default 16)
//   HMCSIM_FIG5_CSV_DIR   if set, writes fig5_<config>.csv per config
#include <cstdio>
#include <fstream>

#include "analysis/report.hpp"
#include "bench/bench_common.hpp"
#include "trace/series.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_FIG5_REQUESTS", u64{1} << 18);
  const u64 want_buckets = env_u64("HMCSIM_FIG5_BUCKETS", 16);
  const char* csv_dir = std::getenv("HMCSIM_FIG5_CSV_DIR");

  std::printf("=== Figure 5: Random Access Simulation Results ===\n");
  std::printf("workload: %llu x 64B random access, 50/50 R/W, full trace\n",
              static_cast<unsigned long long>(requests));

  for (const auto& nc : table1_configs()) {
    Simulator sim = make_sim_or_die(nc.config);

    // Pre-size the bucket width from a quick throughput estimate so we end
    // up near the requested bucket count (exactness is unimportant).
    const u64 est_cycles =
        requests / (u64{2} * nc.config.num_vaults()) + 1024;
    const Cycle width = std::max<Cycle>(1, est_cycles / want_buckets);

    auto series = std::make_shared<VaultSeriesSink>(nc.config.num_vaults(),
                                                    width);
    sim.tracer().set_level(TraceLevel::Events);
    sim.tracer().add_sink(series);

    const DriverResult r = run_random_access(sim, requests);
    const Fig5Summary s = summarize_series(*series);

    std::printf("\n--- %s ---\n", nc.label.c_str());
    std::printf("runtime %llu cycles | conflicts %llu | reads %llu | "
                "writes %llu | xbar stalls %llu | latency events %llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(s.total_conflicts),
                static_cast<unsigned long long>(s.total_reads),
                static_cast<unsigned long long>(s.total_writes),
                static_cast<unsigned long long>(s.total_xbar_stalls),
                static_cast<unsigned long long>(s.total_latency_penalties));
    std::printf("per-cycle means: conflicts %.2f, reads %.2f, writes %.2f\n",
                s.mean_conflicts_per_cycle, s.mean_reads_per_cycle,
                s.mean_writes_per_cycle);

    // The bucketed series — the Figure 5 curves, one row per time bucket.
    std::printf("%12s %10s %10s %10s %12s %10s\n", "cycle", "conflicts",
                "reads", "writes", "xbar_stalls", "latency");
    for (const auto& b : series->buckets()) {
      u64 conflicts = 0, reads = 0, writes = 0;
      for (const u32 v : b.conflicts) conflicts += v;
      for (const u32 v : b.reads) reads += v;
      for (const u32 v : b.writes) writes += v;
      std::printf("%12llu %10llu %10llu %10llu %12llu %10llu\n",
                  static_cast<unsigned long long>(b.first_cycle),
                  static_cast<unsigned long long>(conflicts),
                  static_cast<unsigned long long>(reads),
                  static_cast<unsigned long long>(writes),
                  static_cast<unsigned long long>(b.xbar_stalls),
                  static_cast<unsigned long long>(b.latency_penalties));
    }

    if (csv_dir != nullptr) {
      std::string path = std::string(csv_dir) + "/fig5_";
      for (const char c : nc.label) {
        if (std::isalnum(static_cast<unsigned char>(c))) path += c;
      }
      path += ".csv";
      std::ofstream os(path);
      write_fig5_csv(os, *series);
      std::printf("per-vault CSV written to %s\n", path.c_str());
    }
  }

  std::printf("\npaper shape check: all four configurations show sustained "
              "per-vault read/write retirement,\nheavy bank-conflict "
              "activity, crossbar stalls under saturation, and latency "
              "penalties\nfrom non-co-located round-robin injection — the "
              "five series Figure 5 plots.\n");
  return 0;
}
