// Ablation A4: packet codec and CRC microbenchmarks (google-benchmark).
//
// The packet layer sits on the simulator's hot path (every request is
// encoded by the host and decoded at the link interface), so its
// throughput bounds overall simulation speed.
#include <benchmark/benchmark.h>

#include <vector>
#include <cstdint>

#include "common/random.hpp"
#include "packet/crc32.hpp"
#include "packet/packet.hpp"

namespace hmcsim {
namespace {

void BM_EncodeRead(benchmark::State& state) {
  RequestFields f;
  f.cmd = Command::Rd64;
  f.addr = 0x1234560;
  f.tag = 17;
  f.slid = 2;
  PacketBuffer pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_request(f, {}, pkt));
    benchmark::DoNotOptimize(pkt.words[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeRead);

void BM_EncodeWrite(benchmark::State& state) {
  const usize bytes = static_cast<usize>(state.range(0));
  RequestFields f;
  f.cmd = static_cast<Command>(static_cast<u8>(Command::Wr16) +
                               (bytes / 16 - 1));
  f.addr = 0x1234560;
  f.tag = 17;
  std::vector<u64> payload(bytes / 8, 0xAB);
  PacketBuffer pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_request(f, payload, pkt));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_EncodeWrite)->Arg(16)->Arg(64)->Arg(128);

void BM_DecodeRequest(benchmark::State& state) {
  RequestFields f;
  f.cmd = Command::Wr64;
  f.addr = 0x1234560;
  f.tag = 17;
  std::vector<u64> payload(8, 0xCD);
  PacketBuffer pkt;
  (void)encode_request(f, payload, pkt);
  RequestFields out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_request(pkt, out));
    benchmark::DoNotOptimize(out.addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeRequest);

void BM_Crc32k(benchmark::State& state) {
  const usize bytes = static_cast<usize>(state.range(0));
  std::vector<u8> data(bytes);
  SplitMix64 rng(1);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc::crc32k(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_Crc32k)->Arg(16)->Arg(144)->Arg(4096);

void BM_SealAndCheckCrc(benchmark::State& state) {
  RequestFields f;
  f.cmd = Command::Wr128;
  f.addr = 0xFF00;
  std::vector<u64> payload(16, 0x77);
  PacketBuffer pkt;
  (void)encode_request(f, payload, pkt);
  for (auto _ : state) {
    seal_crc(pkt);
    benchmark::DoNotOptimize(check_crc(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SealAndCheckCrc);

void BM_GlibcRandomDraw(benchmark::State& state) {
  GlibcRandom rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlibcRandomDraw);

}  // namespace
}  // namespace hmcsim

BENCHMARK_MAIN();
