// Ablation A5: read/write mix sweep.
//
// The paper fixes a 50/50 mix (§VI.A).  Because writes carry 5-FLIT request
// packets while reads carry 1-FLIT requests (and the response sizes invert:
// RD_RS is 5 FLITs, WR_RS is 1), the mix moves the pressure between the
// request and response directions of the crossbar links.
//
// Env knobs: HMCSIM_RWMIX_REQUESTS (default 2^17).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_RWMIX_REQUESTS", u64{1} << 17);
  std::printf("=== Ablation A5: read/write mix (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%8s %10s %10s %10s %14s %12s\n", "read%", "cycles", "reads",
              "writes", "xbar_stalls", "lat_mean");

  for (const double read_fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    DeviceConfig dc = table1_config_4link_8bank();
    dc.capacity_bytes = 0;
    Simulator sim = make_sim_or_die(dc);
    const DriverResult r = run_random_access(sim, requests, read_fraction);
    const DeviceStats s = sim.total_stats();
    std::printf("%7.0f%% %10llu %10llu %10llu %14llu %12.1f\n",
                read_fraction * 100,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(s.reads),
                static_cast<unsigned long long>(s.writes),
                static_cast<unsigned long long>(s.xbar_rqst_stalls),
                r.latency.mean());
  }

  std::printf("\nexpected shape: read-heavy mixes push more FLITs onto the "
              "response path and fewer\nonto the request path; an all-read "
              "stream injects ~3x more requests per link-cycle\nthan an "
              "all-write stream, shifting the bottleneck toward the banks.\n");
  return 0;
}
