// Chaos-checker cost harness: host-side requests/second with the live
// invariant checker (src/chaos/engine.cpp) off, on at the default cadence,
// and off again.
//
// The perf contract (docs/CHAOS.md) is that the whole chaos subsystem
// sits behind one null-pointer check in the clock path, so a run with no
// plan and chaos_invariants = 0 pays ~0 for the subsystem's existence,
// and the default checker cadence (every 1024 cycles, the value
// hmcsim_run arms alongside a plan) stays a small tax on a busy workload:
//
//   off          no chaos engine at all (the shipping default)
//   checker_on   chaos_invariants = 1024, full invariant suite per pass
//   off_rerun    off again (noise bound for the off gate)
//
// Gates: the two off runs within 2% of each other (any systematic cost of
// the disabled subsystem repeats instead of averaging out), and
// checker_on within 5% of the off baseline.
//
//   build/bench/bench_chaos [--json <path|->]
//
// Scale knobs (env): HMCSIM_CHAOSBENCH_REQUESTS, HMCSIM_CHAOSBENCH_REPEATS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace hmcsim::bench {
namespace {

enum class Mode : int { Off, CheckerOn, OffRerun };

struct Measurement {
  std::string name;
  u64 completed{0};
  u64 errors{0};
  u64 invariant_checks{0};
  double seconds{0.0};

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

DeviceConfig bench_device(Mode mode) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  // The link protocol turns on the token-conservation identities, so a
  // checker pass walks the full suite rather than queue bounds alone.
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  if (mode == Mode::CheckerOn) dc.chaos_invariants = 1024;
  return dc;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Off: return "off";
    case Mode::CheckerOn: return "checker_on";
    default: return "off_rerun";
  }
}

using SteadyClock = std::chrono::steady_clock;

struct ModeState {
  Mode mode;
  Measurement m;
  Simulator sim;
  RandomAccessGenerator gen;

  ModeState(Mode mode_, const DeviceConfig& dc, const GeneratorConfig& gc)
      : mode(mode_), sim(make_sim_or_die(dc)), gen(gc) {
    m.name = mode_name(mode_);
  }
};

/// One timed burst of `requests` through an already-warm simulator.
double timed_burst(ModeState& st, u64 requests) {
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  HostDriver driver(st.sim, st.gen, dcfg);
  const auto start = SteadyClock::now();
  const DriverResult r = driver.run();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  st.m.completed += r.completed;
  st.m.errors += r.errors;
  return secs;
}

void print_measurement(const Measurement& m) {
  std::printf("%-11s %10llu reqs | %10.0f req/s | invariant passes %llu\n",
              m.name.c_str(), static_cast<unsigned long long>(m.completed),
              m.requests_per_sec(),
              static_cast<unsigned long long>(m.invariant_checks));
}

/// Percentage gap of the slower run below the faster one.
double pct_gap(double a, double b) {
  const double hi = std::max(a, b);
  return hi > 0.0 ? 100.0 * (hi - std::min(a, b)) / hi : 0.0;
}

void write_json(std::ostream& os, const std::vector<Measurement>& ms,
                double off_gap_pct, double on_overhead_pct) {
  os << "{\n  \"bench\": \"bench_chaos\",\n  \"modes\": [\n";
  for (usize i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    os << "   {\"name\": \"" << m.name << "\", \"completed\": " << m.completed
       << ", \"errors\": " << m.errors
       << ", \"invariant_checks\": " << m.invariant_checks
       << ", \"seconds\": " << m.seconds
       << ", \"requests_per_sec\": " << m.requests_per_sec() << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"chaos_off_overhead_pct\": " << off_gap_pct
     << ",\n  \"chaos_checker_overhead_pct\": " << on_overhead_pct
     << "\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  const u64 requests = env_u64("HMCSIM_CHAOSBENCH_REQUESTS", 1 << 15);
  const u64 repeats = env_u64("HMCSIM_CHAOSBENCH_REPEATS", 5);

  GeneratorConfig gc;
  gc.capacity_bytes = bench_device(Mode::Off).derived_capacity();
  gc.request_bytes = 64;
  std::vector<ModeState> states;
  states.reserve(3);
  states.emplace_back(Mode::Off, bench_device(Mode::Off), gc);
  states.emplace_back(Mode::CheckerOn, bench_device(Mode::CheckerOn), gc);
  states.emplace_back(Mode::OffRerun, bench_device(Mode::OffRerun), gc);

  // Untimed warmup on every simulator: fault in the storage arenas and
  // settle the CPU before any timed round.
  for (ModeState& st : states) {
    (void)timed_burst(st, std::min<u64>(requests, 8192));
    st.m = Measurement{};
    st.m.name = mode_name(st.mode);
  }

  // Interleaved rounds: each round times every mode once, so frequency
  // scaling and scheduler drift hit all modes alike; best-of per mode then
  // discards whatever noise remains.  Any repeatable mode gap that
  // survives is systematic cost, not warmup order.
  std::vector<double> best(states.size(), 0.0);
  for (u64 rep = 0; rep < repeats; ++rep) {
    for (usize i = 0; i < states.size(); ++i) {
      const double secs = timed_burst(states[i], requests);
      if (rep == 0 || secs < best[i]) best[i] = secs;
    }
  }
  std::vector<Measurement> ms;
  for (usize i = 0; i < states.size(); ++i) {
    if (const ChaosEngine* chaos = states[i].sim.chaos()) {
      states[i].m.invariant_checks = chaos->invariant_checks();
      if (states[i].sim.chaos_violated()) {
        std::fprintf(stderr, "FAIL %s: invariant violated mid-bench:\n%s\n",
                     states[i].m.name.c_str(),
                     states[i].sim.chaos_report().c_str());
        return 1;
      }
    }
    states[i].m.seconds = best[i] * static_cast<double>(repeats);
    ms.push_back(states[i].m);
  }
  for (const Measurement& m : ms) print_measurement(m);

  const double off_gap_pct =
      pct_gap(ms[0].requests_per_sec(), ms[2].requests_per_sec());
  const double off_baseline =
      0.5 * (ms[0].requests_per_sec() + ms[2].requests_per_sec());
  const double on_overhead_pct =
      ms[1].requests_per_sec() > 0.0
          ? 100.0 * (off_baseline / ms[1].requests_per_sec() - 1.0)
          : 0.0;
  std::printf("chaos-off overhead: %.2f%% (two off runs; gate: < 2%%)\n"
              "checker overhead at cadence 1024: %.2f%% (gate: < 5%%)\n",
              off_gap_pct, on_overhead_pct);

  int rc = 0;
  // Gate 1: the off path carries no chaos cost.
  if (off_gap_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: chaos-off runs differ by %.2f%% (>= 2%%); the off "
                 "path is paying for the chaos subsystem\n",
                 off_gap_pct);
    rc = 1;
  }
  // Gate 2: the default checker cadence stays within a 5% tax.
  if (on_overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: checker overhead %.2f%% (>= 5%%) at the default "
                 "cadence on the busy random-access workload\n",
                 on_overhead_pct);
    rc = 1;
  }
  // Gate 3: the harness measured real, checked work.
  for (const Measurement& m : ms) {
    if (m.completed != requests * repeats) {
      std::fprintf(stderr, "FAIL %s: %llu of %llu requests retired\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(m.completed),
                   static_cast<unsigned long long>(requests * repeats));
      rc = 1;
    }
  }
  if (ms[1].invariant_checks == 0) {
    std::fprintf(stderr, "FAIL checker_on: the checker never ran\n");
    rc = 1;
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, ms, off_gap_pct, on_overhead_pct);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 2;
      }
      write_json(os, ms, off_gap_pct, on_overhead_pct);
    }
  }
  return rc;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
