// Ablation A7: link serialization rate.
//
// The spec permits 4-link devices to run their 16-lane SERDES links at 10,
// 12.5 or 15 Gbps and 8-link devices at 10 Gbps (§III.A).  In the device
// clock domain those rates are 1.0 / 1.25 / 1.5 FLITs per cycle per
// direction per link; the paper's crossbar model additionally has internal
// arbitration bandwidth above the SERDES rate.  This sweep varies the
// per-link crossbar FLIT budget from below the physical rates up to the
// unconstrained regime, showing where the device flips from link-bound to
// bank-bound, and reports measured per-link utilization.
//
// Env knobs: HMCSIM_LINKRATE_REQUESTS (default 2^16).
#include <cstdio>

#include "analysis/report.hpp"
#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_LINKRATE_REQUESTS", u64{1} << 16);
  std::printf("=== Ablation A7: link FLIT budget sweep (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("physical reference: 16 lanes @ 10/12.5/15 Gbps = "
              "%.2f/%.2f/%.2f FLITs/cycle\n\n",
              link_flits_per_cycle(16, 10.0), link_flits_per_cycle(16, 12.5),
              link_flits_per_cycle(16, 15.0));
  std::printf("%12s %10s %12s %12s %12s\n", "flits/cycle", "cycles",
              "rqst_util", "rsp_util", "lat_mean");

  for (const u32 budget : {1u, 2u, 3u, 5u, 10u, 20u, 40u}) {
    DeviceConfig dc = table1_config_4link_8bank();
    dc.capacity_bytes = 0;
    dc.xbar_flits_per_cycle = budget;
    Simulator sim = make_sim_or_die(dc);
    const DriverResult r = run_random_access(sim, requests);

    const auto utils = link_utilization(sim);
    double rqst_util = 0.0, rsp_util = 0.0;
    for (const auto& u : utils) {
      rqst_util += u.rqst_util;
      rsp_util += u.rsp_util;
    }
    rqst_util /= static_cast<double>(utils.size());
    rsp_util /= static_cast<double>(utils.size());

    std::printf("%12u %10llu %11.1f%% %11.1f%% %12.1f\n", budget,
                static_cast<unsigned long long>(r.cycles), rqst_util * 100,
                rsp_util * 100, r.latency.mean());
  }

  std::printf("\nexpected shape: at 1-2 FLITs/cycle (the physical SERDES "
              "rates) the links are the\nbottleneck and run near 100%% "
              "utilization; past ~5 the 8-bank vaults take over as\nthe "
              "limiter and extra link bandwidth buys nothing.\n");
  return 0;
}
