// Parallel clock-engine speedup (google-benchmark): the same saturating
// 8-link / 32-vault workload at 1, 2, and 4 worker threads.
//
// Because the engine is deterministic by construction (static sharding,
// per-shard state, fixed-order merges), every thread count simulates the
// identical machine — these benchmarks measure pure wall-clock scaling.
// The acceptance target is >= 1.5x at 4 threads on a 4-core host; on
// fewer cores the ratio degrades toward 1.0 (oversubscribed workers time-
// slice one CPU) but must never fall far below it, since the spin budget
// in ThreadPool yields promptly when a worker has no runnable shard.
//
//   build/bench/bench_parallel_speedup --benchmark_filter=BM_ClockEngine
//
// Compare the items_per_second of the /threads:1 row against /threads:4.
#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

/// Saturating random traffic on the paper's largest single-cube geometry
/// (8 links, 32 vaults): enough independent vault shards that stages 3-4
/// dominate and parallelize well.
void BM_ClockEngine(benchmark::State& state) {
  DeviceConfig dc = table1_config_8link_16bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  dc.sim_threads = static_cast<u32>(state.range(0));
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  if (sim.config().device.num_vaults() != 32) {
    state.SkipWithError("expected a 32-vault geometry");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    HostDriver driver(sim, gen, dcfg);
    retired += driver.run().completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
  state.counters["threads"] = static_cast<double>(sim.sim_threads());
}
BENCHMARK(BM_ClockEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The RAS-loaded variant: DRAM fault rolls and ECC checks add per-vault
/// work, which is exactly the part that shards perfectly — parallel
/// speedup should be at least as good as the clean run.
void BM_ClockEngineRas(benchmark::State& state) {
  DeviceConfig dc = table1_config_8link_16bank();
  dc.capacity_bytes = 0;
  dc.sim_threads = static_cast<u32>(state.range(0));
  dc.dram_sbe_rate_ppm = 10000;
  dc.dram_dbe_rate_ppm = 1000;
  dc.scrub_interval_cycles = 256;
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);

  u64 retired = 0;
  for (auto _ : state) {
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 13;
    HostDriver driver(sim, gen, dcfg);
    retired += driver.run().completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(retired));
}
BENCHMARK(BM_ClockEngineRas)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Dispatch overhead floor: an idle device still fans out and re-joins the
/// stage shards every cycle, so this isolates the pool handshake cost that
/// saturated runs must amortize.
void BM_IdleCycleParallel(benchmark::State& state) {
  DeviceConfig dc = table1_config_8link_16bank();
  dc.capacity_bytes = 0;
  dc.sim_threads = static_cast<u32>(state.range(0));
  Simulator sim;
  if (!ok(sim.init_simple(dc))) {
    state.SkipWithError("init failed");
    return;
  }
  for (auto _ : state) {
    sim.clock();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IdleCycleParallel)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

}  // namespace
}  // namespace hmcsim

BENCHMARK_MAIN();
