// Observability cost harness: host-side requests/second with the
// profiler / telemetry / flight-recorder layer (src/profile/) off, fully
// on, and off again.
//
// The perf contract (docs/OBSERVABILITY.md) is that every observability
// entry point sits behind a null-pointer or interval check in the clock
// path, so the shipping default — everything off — pays ~0 for the
// subsystem's existence, and even the everything-on configuration stays a
// small tax on a busy workload.  The harness measures the off path twice
// with the on mode between, and gates:
//
//   off        all observability off (the shipping default)
//   all_on     self-profiler + occupancy telemetry (every 64 cycles) +
//              flight recorder (depth 256)
//   off_rerun  all off again (noise bound for the off gate)
//
// Gates: the two off runs within 2% of each other (any systematic
// all-off cost repeats instead of averaging out), and all_on within 10%
// of the off baseline on the busy GUPS workload.
//
//   build/bench/bench_profile_overhead [--json <path|->]
//
// Scale knobs (env): HMCSIM_PROFBENCH_REQUESTS, HMCSIM_PROFBENCH_REPEATS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace hmcsim::bench {
namespace {

enum class Mode : int { Off, AllOn, OffRerun };

struct Measurement {
  std::string name;
  u64 completed{0};
  u64 errors{0};
  u64 sample_passes{0};
  u64 profiled_cycles{0};
  u64 flight_events{0};
  double seconds{0.0};

  double requests_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

DeviceConfig bench_device(Mode mode) {
  DeviceConfig dc = table1_config_4link_8bank();
  dc.capacity_bytes = 0;
  dc.model_data = false;
  if (mode == Mode::AllOn) {
    dc.self_profile = true;
    dc.telemetry_interval_cycles = 64;
    dc.flight_recorder_depth = 256;
  }
  return dc;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Off: return "off";
    case Mode::AllOn: return "all_on";
    default: return "off_rerun";
  }
}

using SteadyClock = std::chrono::steady_clock;

struct ModeState {
  Mode mode;
  Measurement m;
  Simulator sim;
  RandomAccessGenerator gen;

  ModeState(Mode mode_, const DeviceConfig& dc, const GeneratorConfig& gc)
      : mode(mode_), sim(make_sim_or_die(dc)), gen(gc) {
    m.name = mode_name(mode_);
  }
};

/// One timed burst of `requests` through an already-warm simulator.
double timed_burst(ModeState& st, u64 requests) {
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  HostDriver driver(st.sim, st.gen, dcfg);
  const auto start = SteadyClock::now();
  const DriverResult r = driver.run();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  st.m.completed += r.completed;
  st.m.errors += r.errors;
  return secs;
}

void collect_instrumentation(ModeState& st) {
  st.sim.flush_observability();
  if (const Telemetry* tel = st.sim.telemetry()) {
    st.m.sample_passes = tel->sample_passes();
  }
  if (const StageProfiler* prof = st.sim.profiler()) {
    st.m.profiled_cycles = prof->staged_cycles() + prof->fast_cycles();
  }
  if (const FlightRecorder* rec = st.sim.flight_recorder()) {
    for (u32 d = 0; d < rec->num_devices(); ++d) {
      st.m.flight_events += rec->recorded(d);
    }
  }
}

void print_measurement(const Measurement& m) {
  std::printf("%-10s %10llu reqs | %10.0f req/s | samples %llu | "
              "profiled cycles %llu | flight events %llu\n",
              m.name.c_str(), static_cast<unsigned long long>(m.completed),
              m.requests_per_sec(),
              static_cast<unsigned long long>(m.sample_passes),
              static_cast<unsigned long long>(m.profiled_cycles),
              static_cast<unsigned long long>(m.flight_events));
}

/// Percentage gap of the slower run below the faster one.
double pct_gap(double a, double b) {
  const double hi = std::max(a, b);
  return hi > 0.0 ? 100.0 * (hi - std::min(a, b)) / hi : 0.0;
}

void write_json(std::ostream& os, const std::vector<Measurement>& ms,
                double off_gap_pct, double on_overhead_pct) {
  os << "{\n  \"bench\": \"bench_profile_overhead\",\n  \"modes\": [\n";
  for (usize i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    os << "   {\"name\": \"" << m.name << "\", \"completed\": " << m.completed
       << ", \"errors\": " << m.errors
       << ", \"sample_passes\": " << m.sample_passes
       << ", \"profiled_cycles\": " << m.profiled_cycles
       << ", \"flight_events\": " << m.flight_events
       << ", \"seconds\": " << m.seconds
       << ", \"requests_per_sec\": " << m.requests_per_sec() << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"observability_off_overhead_pct\": " << off_gap_pct
     << ",\n  \"observability_on_overhead_pct\": " << on_overhead_pct
     << "\n}\n";
}

int run_main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path|->]\n", argv[0]);
      return 2;
    }
  }

  const u64 requests = env_u64("HMCSIM_PROFBENCH_REQUESTS", 1 << 15);
  const u64 repeats = env_u64("HMCSIM_PROFBENCH_REPEATS", 5);

  GeneratorConfig gc;
  gc.capacity_bytes = bench_device(Mode::Off).derived_capacity();
  gc.request_bytes = 64;
  std::vector<ModeState> states;
  states.reserve(3);
  states.emplace_back(Mode::Off, bench_device(Mode::Off), gc);
  states.emplace_back(Mode::AllOn, bench_device(Mode::AllOn), gc);
  states.emplace_back(Mode::OffRerun, bench_device(Mode::OffRerun), gc);

  // Untimed warmup on every simulator: fault in the storage arenas and
  // settle the CPU before any timed round.
  for (ModeState& st : states) {
    (void)timed_burst(st, std::min<u64>(requests, 8192));
    st.m = Measurement{};
    st.m.name = mode_name(st.mode);
  }

  // Interleaved rounds: each round times every mode once, so frequency
  // scaling and scheduler drift hit all modes alike; best-of per mode then
  // discards whatever noise remains.  Any repeatable mode gap that
  // survives is systematic cost, not warmup order.
  std::vector<double> best(states.size(), 0.0);
  for (u64 rep = 0; rep < repeats; ++rep) {
    for (usize i = 0; i < states.size(); ++i) {
      const double secs = timed_burst(states[i], requests);
      if (rep == 0 || secs < best[i]) best[i] = secs;
    }
  }
  std::vector<Measurement> ms;
  for (usize i = 0; i < states.size(); ++i) {
    collect_instrumentation(states[i]);
    states[i].m.seconds = best[i] * static_cast<double>(repeats);
    ms.push_back(states[i].m);
  }
  for (const Measurement& m : ms) print_measurement(m);

  const double off_gap_pct =
      pct_gap(ms[0].requests_per_sec(), ms[2].requests_per_sec());
  const double off_baseline =
      0.5 * (ms[0].requests_per_sec() + ms[2].requests_per_sec());
  const double on_overhead_pct =
      ms[1].requests_per_sec() > 0.0
          ? 100.0 * (off_baseline / ms[1].requests_per_sec() - 1.0)
          : 0.0;
  std::printf("all-off overhead: %.2f%% (two off runs; gate: < 2%%)\n"
              "all-on overhead: %.2f%% (gate: < 10%%)\n",
              off_gap_pct, on_overhead_pct);

  int rc = 0;
  // Gate 1: the off path carries no observability cost.
  if (off_gap_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: observability-off runs differ by %.2f%% (>= 2%%); "
                 "the off path is paying for the profile layer\n",
                 off_gap_pct);
    rc = 1;
  }
  // Gate 2: the fully-instrumented simulator stays within a 10% tax.
  if (on_overhead_pct >= 10.0) {
    std::fprintf(stderr,
                 "FAIL: all-on overhead %.2f%% (>= 10%%) on the busy GUPS "
                 "workload\n",
                 on_overhead_pct);
    rc = 1;
  }
  // Gate 3: the harness measured real, instrumented work.
  for (const Measurement& m : ms) {
    if (m.completed != requests * repeats) {
      std::fprintf(stderr, "FAIL %s: %llu of %llu requests retired\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(m.completed),
                   static_cast<unsigned long long>(requests * repeats));
      rc = 1;
    }
  }
  if (ms[1].sample_passes == 0 || ms[1].profiled_cycles == 0) {
    std::fprintf(stderr, "FAIL all_on: instrumentation never engaged\n");
    rc = 1;
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, ms, off_gap_pct, on_overhead_pct);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 2;
      }
      write_json(os, ms, off_gap_pct, on_overhead_pct);
    }
  }
  return rc;
}

}  // namespace
}  // namespace hmcsim::bench

int main(int argc, char** argv) {
  return hmcsim::bench::run_main(argc, argv);
}
