// Ablation A9: DRAM refresh overhead.
//
// The paper's model omits refresh; real stacked DRAM pays tRFC every tREFI
// per vault.  This sweep dials the refresh duty cycle from zero to
// unrealistically heavy and reports the throughput tax, with the realistic
// point (7.8 us tREFI / 350 ns tRFC at 1.25 GHz) highlighted.
//
// Env knobs: HMCSIM_REFRESH_REQUESTS (default 2^17).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_REFRESH_REQUESTS", u64{1} << 17);
  std::printf("=== Ablation A9: DRAM refresh overhead (4-link/8-bank, "
              "%llu requests) ===\n",
              static_cast<unsigned long long>(requests));
  std::printf("%10s %8s %8s %10s %10s %12s\n", "interval", "busy", "duty",
              "cycles", "refreshes", "slowdown");

  Cycle baseline = 0;
  struct Point {
    u32 interval;
    u32 busy;
    const char* note;
  };
  const Point points[] = {
      {0, 0, ""},            // off (the paper's model)
      {9750, 440, " <- realistic tREFI/tRFC @1.25GHz"},
      {2000, 440, ""},
      {1000, 440, ""},
      {500, 250, ""},
  };
  for (const Point& p : points) {
    DeviceConfig dc = table1_config_4link_8bank();
    dc.capacity_bytes = 0;
    dc.refresh_interval_cycles = p.interval;
    dc.refresh_busy_cycles = p.busy;
    Simulator sim = make_sim_or_die(dc);
    const DriverResult r = run_random_access(sim, requests);
    if (p.interval == 0) baseline = r.cycles;
    const double duty =
        p.interval == 0
            ? 0.0
            : static_cast<double>(p.busy) / static_cast<double>(p.interval);
    std::printf("%10u %8u %7.1f%% %10llu %10llu %11.3fx%s\n", p.interval,
                p.busy, duty * 100,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(
                    sim.total_stats().refreshes),
                baseline == 0
                    ? 1.0
                    : static_cast<double>(r.cycles) /
                          static_cast<double>(baseline),
                p.note);
  }

  std::printf("\nexpected shape: the realistic refresh point costs only a "
              "few percent (tRFC/tREFI ~4.5%%\nper vault, hidden further "
              "by bank-level parallelism and staggering); the tax grows\n"
              "with duty cycle and explains why the paper could omit "
              "refresh without changing its\nconclusions.\n");
  return 0;
}
