// Table I reproduction: "Simulation Runtime in Clock Cycles".
//
// Paper setup (§VI.A): 33,554,432 64-byte requests, 50/50 read/write mix,
// glibc LCG randomness, round-robin link injection, 128 crossbar queue
// slots, 64 vault queue slots, against four device configurations.
//
// We default to 2^20 requests so a single-core CI box finishes in seconds;
// set HMCSIM_TABLE1_REQUESTS=33554432 for the paper's full scale.  The
// paper's reported result is the *relative* shape — the speedup from extra
// banks (avg 1.7x) and extra links (avg 2.319x) — which is invariant to
// the request count once queues saturate.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench/bench_common.hpp"

using namespace hmcsim;
using namespace hmcsim::bench;

int main() {
  const u64 requests = env_u64("HMCSIM_TABLE1_REQUESTS", u64{1} << 20);

  std::printf("=== Table I: Simulation Runtime in Clock Cycles ===\n");
  std::printf("workload: %llu x 64B random access, 50/50 R/W, "
              "round-robin links\n\n",
              static_cast<unsigned long long>(requests));

  std::vector<Table1Row> rows;
  for (const auto& nc : table1_configs()) {
    Simulator sim = make_sim_or_die(nc.config);
    const DriverResult r = run_random_access(sim, requests);
    if (r.completed != requests) {
      std::fprintf(stderr, "%s: run incomplete (%llu/%llu)\n",
                   nc.label.c_str(),
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(requests));
      return 1;
    }
    rows.push_back({nc.label, r.cycles, requests, sim.total_stats()});
  }

  std::printf("%s\n", format_table1(rows).c_str());

  // The derived speedups the paper calls out in the text.
  const double banks_4link =
      static_cast<double>(rows[0].cycles) / static_cast<double>(rows[1].cycles);
  const double banks_8link =
      static_cast<double>(rows[2].cycles) / static_cast<double>(rows[3].cycles);
  const double links_8bank =
      static_cast<double>(rows[0].cycles) / static_cast<double>(rows[2].cycles);
  const double links_16bank =
      static_cast<double>(rows[1].cycles) / static_cast<double>(rows[3].cycles);

  std::printf("speedup from 8->16 banks @4 links : %.3fx\n", banks_4link);
  std::printf("speedup from 8->16 banks @8 links : %.3fx\n", banks_8link);
  std::printf("  mean bank speedup               : %.3fx   (paper: 1.700x)\n",
              (banks_4link + banks_8link) / 2);
  std::printf("speedup from 4->8 links @8 banks  : %.3fx\n", links_8bank);
  std::printf("speedup from 4->8 links @16 banks : %.3fx\n", links_16bank);
  std::printf("  mean link speedup               : %.3fx   (paper: 2.319x)\n",
              (links_8bank + links_16bank) / 2);

  std::printf("\npaper reference (2^25 requests on the authors' host):\n");
  std::printf("  4-Link; 8-Bank; 2GB   3,404,553 cycles\n");
  std::printf("  4-Link; 16-Bank; 4GB  2,327,858 cycles\n");
  std::printf("  8-Link; 8-Bank; 4GB   1,708,918 cycles\n");
  std::printf("  8-Link; 16-Bank; 8GB    879,183 cycles\n");
  return 0;
}
