// Register access demo: the two paths the HMC specification provides for
// reading/writing device configuration registers.
//
//  1. In-band MODE_READ / MODE_WRITE packets — route to the target cube
//     like any memory request, work across chains, but consume memory link
//     bandwidth.
//  2. Side-band JTAG / I2C — free of memory-bandwidth cost and outside the
//     clock domains entirely.
//
// Usage: ./examples/register_access
#include <cinttypes>
#include <cstdio>

#include "core/simulator.hpp"

using namespace hmcsim;

namespace {

void dump_register_table() {
  std::printf("architected register map (physical index -> class):\n");
  for (const auto& def : register_table()) {
    const char* cls = def.cls == RegClass::RW    ? "RW "
                      : def.cls == RegClass::RO  ? "RO "
                                                 : "RWS";
    std::printf("  0x%06x  %-6s %s\n", def.phys,
                std::string(def.name).c_str(), cls);
  }
}

}  // namespace

int main() {
  Simulator sim;
  std::string diag;
  DeviceConfig dc;  // default 4-link device
  if (!ok(sim.init_simple(dc, &diag))) {
    std::fprintf(stderr, "init failed: %s\n", diag.c_str());
    return 1;
  }

  dump_register_table();

  // --- side-band path: instantaneous, no clocks consumed -----------------
  u64 rvid = 0;
  (void)sim.jtag_reg_read(0, phys_from_reg(Reg::Rvid), rvid);
  std::printf("\nJTAG read RVID            = 0x%016" PRIx64
              " (clock still %" PRIu64 ")\n",
              rvid, sim.now());

  (void)sim.jtag_reg_write(0, phys_from_reg(Reg::Gc), 0x00C0FFEE);
  u64 gc = 0;
  (void)sim.jtag_reg_read(0, phys_from_reg(Reg::Gc), gc);
  std::printf("JTAG write/read GC        = 0x%016" PRIx64 "\n", gc);

  // --- RWS self-clear behavior -------------------------------------------
  (void)sim.jtag_reg_write(0, phys_from_reg(Reg::Edr0), 0xDEAD);
  u64 edr = 0;
  (void)sim.jtag_reg_read(0, phys_from_reg(Reg::Edr0), edr);
  std::printf("EDR0 just after RWS write = 0x%" PRIx64 "\n", edr);
  sim.clock();
  (void)sim.jtag_reg_read(0, phys_from_reg(Reg::Edr0), edr);
  std::printf("EDR0 after one clock edge = 0x%" PRIx64
              " (self-cleared)\n", edr);

  // --- in-band path: costs link bandwidth and real cycles -----------------
  PacketBuffer pkt;
  (void)build_moderequest(/*cub=*/0, phys_from_reg(Reg::Gc), /*tag=*/1,
                          /*write=*/false, 0, /*link=*/0, pkt);
  (void)sim.send(0, 0, pkt);
  const Cycle sent_at = sim.now();
  PacketBuffer rsp;
  while (!ok(sim.recv(0, 0, rsp))) sim.clock();
  ResponseFields f;
  (void)decode_response(rsp, f);
  std::printf("\nMODE_READ GC via link 0   = 0x%016" PRIx64
              " (%s, took %" PRIu64 " cycles of link time)\n",
              rsp.payload()[0], std::string(to_string(f.cmd)).c_str(),
              sim.now() - sent_at);

  std::printf("\nThe in-band path matches the JTAG value but consumed "
              "packet slots and cycles —\nexactly the bandwidth trade-off "
              "the specification (and paper §V.D) warns about.\n");
  return 0;
}
