// Offline trace analyzer: revisit a previously captured HMC-Sim text trace
// and reproduce the paper's analyses from it — "entire application memory
// traces can be revisited and analyzed for accuracy, latency
// characteristics, bandwidth utilization and overall transaction
// efficiency" (§IV.E).
//
// Usage: ./examples/trace_analyzer <trace.txt> [vaults] [bucket_width]
//        ./examples/trace_analyzer --demo      (generates + analyzes one)
//
// Prints per-event totals, the Figure 5 per-vault series summary, and
// (optionally) the full CSV to stdout with --csv.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "analysis/report.hpp"
#include "core/simulator.hpp"
#include "trace/reader.hpp"
#include "trace/series.hpp"
#include "workload/driver.hpp"

using namespace hmcsim;

namespace {

/// Run a short random-access workload with full tracing and return the
/// trace text (the --demo path).
std::string generate_demo_trace() {
  DeviceConfig dc;
  dc.model_data = false;
  Simulator sim;
  (void)sim.init_simple(dc);
  std::ostringstream trace_text;
  sim.tracer().set_level(TraceLevel::Events);
  sim.tracer().add_sink(std::make_shared<TextSink>(trace_text));

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1 << 13;
  HostDriver driver(sim, gen, dcfg);
  (void)driver.run();
  sim.tracer().flush();
  return trace_text.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.txt> [vaults] [bucket_width] [--csv]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 1;
  }

  u32 vaults = 16;
  Cycle bucket_width = 64;
  bool csv = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (i == 2) {
      vaults = static_cast<u32>(std::strtoul(argv[i], nullptr, 0));
    } else if (i == 3) {
      bucket_width = std::strtoull(argv[i], nullptr, 0);
    }
  }

  std::string text;
  if (std::strcmp(argv[1], "--demo") == 0) {
    std::printf("generating a demo trace (8192 random requests)...\n");
    text = generate_demo_trace();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  // Pass 1: per-event totals.
  CountingSink counts;
  std::istringstream first_pass(text);
  usize malformed = 0;
  const usize replayed = replay_trace(first_pass, counts, &malformed);
  std::printf("replayed %zu records (%zu unparseable lines)\n\n", replayed,
              malformed);
  std::printf("%-18s %12s\n", "event", "count");
  for (usize e = 0; e < kTraceEventCount; ++e) {
    const auto event = static_cast<TraceEvent>(e);
    if (counts.count(event) == 0) continue;
    std::printf("%-18s %12llu\n", std::string(to_string(event)).c_str(),
                static_cast<unsigned long long>(counts.count(event)));
  }

  // Pass 2: Figure 5 series reconstruction.
  VaultSeriesSink series(vaults, bucket_width);
  std::istringstream second_pass(text);
  (void)replay_trace(second_pass, series);
  const Fig5Summary s = summarize_series(series);
  std::printf("\nFigure-5 series over %llu cycles (%zu buckets of %llu):\n",
              static_cast<unsigned long long>(s.cycles),
              series.buckets().size(),
              static_cast<unsigned long long>(bucket_width));
  std::printf("  conflicts %llu | reads %llu | writes %llu | "
              "xbar stalls %llu | latency events %llu\n",
              static_cast<unsigned long long>(s.total_conflicts),
              static_cast<unsigned long long>(s.total_reads),
              static_cast<unsigned long long>(s.total_writes),
              static_cast<unsigned long long>(s.total_xbar_stalls),
              static_cast<unsigned long long>(s.total_latency_penalties));
  std::printf("  per-cycle means: conflicts %.2f, reads %.2f, writes %.2f\n",
              s.mean_conflicts_per_cycle, s.mean_reads_per_cycle,
              s.mean_writes_per_cycle);

  if (csv) {
    std::printf("\n");
    write_fig5_csv(std::cout, series);
  }
  return 0;
}
