// CPU-model integration demo: drives the MemorySystem facade the way a
// gem5-style out-of-order core model would — a reorder window of
// outstanding cache-line transactions, dependent pointer loads, and a
// writeback stream, with completion callbacks instead of packet plumbing.
//
// Usage: ./examples/cpu_integration [iterations]
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "core/memory_system.hpp"

using namespace hmcsim;

namespace {

/// A toy "linked list" laid out in HMC memory: each 64-byte node stores the
/// address of the next node in its first word.
constexpr usize kNodes = 256;
constexpr u64 kNodeBytes = 64;
constexpr u64 kHeapBase = 0x100000;

u64 node_addr(usize index) { return kHeapBase + index * kNodeBytes; }

}  // namespace

int main(int argc, char** argv) {
  const u64 iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : kNodes;

  DeviceConfig dc;  // 4-link / 8-bank / 2 GB
  MemorySystem mem(dc);

  // Phase 1: build the list with a permuted next-pointer chain, issued as a
  // burst of independent writes (a writeback stream).
  std::printf("phase 1: writing %zu list nodes...\n", kNodes);
  int writes_done = 0;
  for (usize i = 0; i < kNodes; ++i) {
    const usize next = (i * 97 + 31) % kNodes;  // coprime walk hits all nodes
    std::vector<u64> node(8, 0);
    node[0] = node_addr(next);
    node[1] = i;  // payload
    (void)mem.write(node_addr(i), kNodeBytes, node,
                    [&](const MemTransaction& t) {
                      if (!t.failed) ++writes_done;
                    });
  }
  if (!mem.drain()) {
    std::fprintf(stderr, "writeback stream did not drain\n");
    return 1;
  }
  std::printf("  %d writes complete at cycle %llu\n", writes_done,
              static_cast<unsigned long long>(mem.now()));

  // Phase 2: pointer-chase the list — each load depends on the previous
  // one, so the core can only hide latency with non-memory work.
  std::printf("phase 2: dependent pointer chase, %llu hops...\n",
              static_cast<unsigned long long>(iterations));
  const Cycle chase_start = mem.now();
  u64 current = node_addr(0);
  u64 checksum = 0;
  for (u64 hop = 0; hop < iterations; ++hop) {
    bool arrived = false;
    u64 next = 0;
    (void)mem.read(current, kNodeBytes, [&](const MemTransaction& t) {
      arrived = true;
      next = t.data[0];
      checksum += t.data[1];
    });
    while (!arrived) mem.tick();
    current = next;
  }
  const Cycle chase_cycles = mem.now() - chase_start;
  std::printf("  chase took %llu cycles (%.1f cycles/hop), checksum %llu\n",
              static_cast<unsigned long long>(chase_cycles),
              static_cast<double>(chase_cycles) /
                  static_cast<double>(iterations),
              static_cast<unsigned long long>(checksum));

  // Phase 3: the same traffic as an out-of-order burst — a 64-entry
  // "MSHR file" of independent loads shows how much latency the HMC's
  // vault/bank parallelism can absorb.
  std::printf("phase 3: 64-deep independent load window over the heap...\n");
  const Cycle burst_start = mem.now();
  u64 issued = 0, completed = 0;
  std::deque<usize> worklist;
  for (usize i = 0; i < kNodes; ++i) worklist.push_back(i);
  while (completed < kNodes) {
    while (issued - completed < 64 && !worklist.empty()) {
      const usize node = worklist.front();
      worklist.pop_front();
      (void)mem.read(node_addr(node), kNodeBytes,
                     [&](const MemTransaction& t) {
                       if (!t.failed) ++completed;
                     });
      ++issued;
    }
    mem.tick();
  }
  const Cycle burst_cycles = mem.now() - burst_start;
  std::printf("  burst of %zu loads took %llu cycles (%.1f cycles/load "
              "amortized)\n",
              kNodes, static_cast<unsigned long long>(burst_cycles),
              static_cast<double>(burst_cycles) / kNodes);

  std::printf("\ntakeaway: the dependent chase pays the full ~%0.f-cycle "
              "round trip per hop, while\nthe 64-deep window amortizes it "
              "to ~%.1f cycles — the bank/vault parallelism the\npaper's "
              "three-dimensional structure provides.\n",
              static_cast<double>(chase_cycles) /
                  static_cast<double>(iterations),
              static_cast<double>(burst_cycles) / kNodes);
  return 0;
}
