// Out-of-place LSD radix sort running entirely in HMC memory.
//
// The paper describes its random-access workload as "similar to a parallel
// random number sort of 2GB of data" (§VI.A).  This example runs the real
// thing at reduced scale: N 32-bit keys live in the cube (one key per
// 16-byte block), and each radix pass streams them out in 128-byte reads
// (sequential — the low-interleave map's best case) and scatters them back
// one block per key (random writes — exactly the access pattern the paper
// measures).  All data movement goes through the full packet pipeline via
// the MemorySystem facade.
//
// Usage: ./examples/radix_sort [keys]
#include <cstdio>
#include <cstdlib>
#include <array>
#include <vector>

#include "common/random.hpp"
#include "core/memory_system.hpp"

using namespace hmcsim;

namespace {

constexpr u64 kTableA = 0x0000000;
constexpr u64 kTableB = 0x4000000;  // 64 MiB apart
constexpr u64 kBlockBytes = 16;     // one key per block
constexpr u64 kStreamBytes = 128;   // 8 keys per streaming read
constexpr u32 kRadixBits = 8;
constexpr u32 kBuckets = 1 << kRadixBits;

u64 key_addr(u64 table, u64 index) { return table + index * kBlockBytes; }

}  // namespace

int main(int argc, char** argv) {
  const u64 keys =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (u64{1} << 15);

  DeviceConfig dc;  // 4-link / 8-bank / 2 GB
  MemorySystem mem(dc);

  std::printf("radix sort of %llu 32-bit keys in HMC memory "
              "(%u-bit digits, %u passes)\n\n",
              static_cast<unsigned long long>(keys), kRadixBits,
              32 / kRadixBits);

  // Phase 0: populate table A with random keys.
  SplitMix64 rng(4242);
  for (u64 i = 0; i < keys; ++i) {
    const u64 data[2] = {rng.next() & 0xffffffffu, 0};
    (void)mem.write(key_addr(kTableA, i), kBlockBytes, data, nullptr);
    if (i % 512 == 511) (void)mem.drain();  // bound in-flight state
  }
  if (!mem.drain()) return 1;
  const Cycle sort_start = mem.now();

  u64 src = kTableA, dst = kTableB;
  for (u32 pass = 0; pass < 32 / kRadixBits; ++pass) {
    const u32 shift = pass * kRadixBits;
    const Cycle pass_start = mem.now();

    // Stage 1: histogram via 128-byte streaming reads (8 keys each).
    std::vector<u64> counts(kBuckets, 0);
    {
      const u64 reads = (keys * kBlockBytes + kStreamBytes - 1) /
                        kStreamBytes;
      u64 issued = 0, completed = 0;
      while (completed < reads) {
        while (issued < reads && issued - completed < 128) {
          (void)mem.read(key_addr(src, issued * 8), kStreamBytes,
                         [&counts, shift, &completed,
                          &keys, issued](const MemTransaction& t) {
                           for (u64 k = 0; k < 8; ++k) {
                             if (issued * 8 + k >= keys) break;
                             ++counts[(t.data[k * 2] >> shift) &
                                      (kBuckets - 1)];
                           }
                           ++completed;
                         });
          ++issued;
        }
        mem.tick();
      }
    }

    // Prefix sums -> destination slot of each bucket's next key.
    std::vector<u64> offsets(kBuckets, 0);
    for (u32 d = 1; d < kBuckets; ++d) {
      offsets[d] = offsets[d - 1] + counts[d - 1];
    }

    // Stage 2: scatter.  Stream the source again; each key becomes one
    // random 16-byte write into its bucket's next slot.  Radix partitioning
    // must be STABLE, but read responses arrive out of order — so completed
    // chunks land in a reorder buffer and keys are scattered strictly in
    // source order.
    {
      const u64 reads = (keys * kBlockBytes + kStreamBytes - 1) /
                        kStreamBytes;
      std::vector<std::array<u64, 8>> chunk(reads);
      std::vector<bool> arrived(reads, false);
      u64 issued = 0, cursor = 0;
      u64 writes_issued = 0, writes_done = 0;
      while (cursor < reads || writes_done < writes_issued) {
        while (issued < reads && issued - cursor < 64) {
          (void)mem.read(key_addr(src, issued * 8), kStreamBytes,
                         [&chunk, &arrived, src](const MemTransaction& t) {
                           const u64 index =
                               (t.addr - src) / kStreamBytes;
                           for (u64 k = 0; k < 8; ++k) {
                             chunk[index][k] = t.data[k * 2];
                           }
                           arrived[index] = true;
                         });
          ++issued;
        }
        // Drain the in-order prefix of the reorder buffer.
        while (cursor < reads && arrived[cursor] &&
               writes_issued - writes_done < 256) {
          for (u64 k = 0; k < 8; ++k) {
            const u64 key_index = cursor * 8 + k;
            if (key_index >= keys) break;
            const u64 key = chunk[cursor][k];
            const u32 digit =
                static_cast<u32>((key >> shift) & (kBuckets - 1));
            const u64 slot = offsets[digit]++;
            const u64 block[2] = {key, 0};
            (void)mem.write(key_addr(dst, slot), kBlockBytes, block,
                            [&writes_done](const MemTransaction&) {
                              ++writes_done;
                            });
            ++writes_issued;
          }
          ++cursor;
        }
        mem.tick();
      }
    }
    if (!mem.drain()) return 1;

    std::printf("pass %u (bits %2u..%2u): %llu cycles\n", pass, shift,
                shift + kRadixBits - 1,
                static_cast<unsigned long long>(mem.now() - pass_start));
    std::swap(src, dst);
  }
  const Cycle sort_cycles = mem.now() - sort_start;

  // Verify sortedness straight from device memory.
  u64 prev = 0;
  bool sorted = true;
  for (u64 i = 0; i < keys && sorted; ++i) {
    u64 word = 0;
    if (!mem.simulator().device(0).store.read_words(key_addr(src, i),
                                                    {&word, 1}) ||
        word < prev) {
      sorted = false;
      break;
    }
    prev = word;
  }

  const DeviceStats s = mem.simulator().total_stats();
  std::printf("\nsorted %llu keys in %llu cycles (%.2f cycles/key) — %s\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(sort_cycles),
              static_cast<double>(sort_cycles) / static_cast<double>(keys),
              sorted ? "VERIFIED SORTED" : "NOT SORTED!");
  std::printf("device saw %llu reads / %llu writes, %llu bank conflicts, "
              "%.1f MB of bank traffic\n",
              static_cast<unsigned long long>(s.reads),
              static_cast<unsigned long long>(s.writes),
              static_cast<unsigned long long>(s.bank_conflicts),
              static_cast<double>(s.bytes_read + s.bytes_written) / 1e6);
  return sorted ? 0 : 1;
}
