// Quickstart: the paper's Figure 4 sample API calling sequence, verbatim in
// spirit — device init, link topology config, request build, send, clock,
// receive, decode, and teardown — using the C-compatible API.
//
// Build & run:  ./examples/quickstart
#include <cinttypes>
#include <cstdio>

#include "capi/hmc_sim.h"

int main() {
  /* Section A. Init the devices: one 4-link cube, 16 vaults, 64-deep vault
   * queues, 8 banks/vault, 8 DRAMs/bank, 2 GB, 128-deep crossbar queues. */
  struct hmcsim_t hmc;
  int ret = hmcsim_init(&hmc, /*num_devs=*/1, /*num_links=*/4,
                        /*num_vaults=*/16, /*queue_depth=*/64,
                        /*num_banks=*/8, /*num_drams=*/8,
                        /*capacity=*/2, /*xbar_depth=*/128);
  if (ret != 0) {
    std::fprintf(stderr, "hmcsim_init failed: %d\n", ret);
    return 1;
  }

  /* Section B. Config the link topology: all four links host-connected. */
  for (uint32_t i = 0; i < 4; ++i) {
    ret = hmcsim_link_config(&hmc, /*src_dev=*/hmc.num_devs + 1,
                             /*dest_dev=*/0, /*src_link=*/i, /*dest_link=*/i,
                             HMC_LINK_HOST_DEV);
    if (ret != 0) {
      std::fprintf(stderr, "hmcsim_link_config(%u) failed: %d\n", i, ret);
      return 1;
    }
  }

  /* Section C. Build a 64-byte write request followed by a 64-byte read of
   * the same address, and push both through the device. */
  uint64_t payload[8];
  for (int i = 0; i < 8; ++i) payload[i] = 0x1111111111111111ull * (i + 1);
  uint64_t packet[HMC_MAX_UQ_PACKET];
  uint64_t head = 0, tail = 0;

  const uint64_t phy_address = 0x5000;
  ret = hmcsim_build_memrequest(&hmc, /*cub=*/0, phy_address, /*tag=*/1,
                                HMC_WR64, /*link=*/0, payload, &head, &tail,
                                packet);
  if (ret != 0) return 1;
  std::printf("built WR64  head=0x%016" PRIx64 " tail=0x%016" PRIx64 "\n",
              head, tail);

  ret = hmcsim_send(&hmc, packet);
  std::printf("send WR64 -> %d\n", ret);

  ret = hmcsim_build_memrequest(&hmc, 0, phy_address, /*tag=*/2, HMC_RD64,
                                /*link=*/0, NULL, &head, &tail, packet);
  if (ret != 0) return 1;
  ret = hmcsim_send(&hmc, packet);
  std::printf("send RD64 -> %d\n", ret);

  /* Clock the sim until both responses arrive. */
  int received = 0;
  for (int cycle = 0; cycle < 64 && received < 2; ++cycle) {
    hmcsim_clock(&hmc);
    while (hmcsim_recv(&hmc, /*dev=*/0, /*link=*/0, packet) == 0) {
      hmc_rsp_t type;
      uint16_t tag;
      uint32_t errstat;
      hmcsim_decode_memresponse(&hmc, packet, &type, &tag, &errstat);
      std::printf("cycle %" PRIu64 ": response type=%d tag=%u errstat=%u\n",
                  hmcsim_get_clock(&hmc), (int)type, tag, errstat);
      if (type == HMC_RSP_RD) {
        /* Data words sit between header and tail. */
        std::printf("  read data[0]=0x%016" PRIx64 " (expected "
                    "0x1111111111111111)\n", packet[1]);
      }
      ++received;
    }
  }

  /* Section D. Side-band register access via JTAG. */
  uint64_t rvid = 0;
  if (hmcsim_jtag_reg_read(&hmc, 0, 0x2f0001u, &rvid) == 0) {
    std::printf("JTAG RVID = 0x%016" PRIx64 "\n", rvid);
  }

  /* Section A. Free the devices. */
  hmcsim_free(&hmc);
  std::printf("done: %d responses in %s\n", received,
              received == 2 ? "order" : "ERROR");
  return received == 2 ? 0 : 1;
}
