// Device chaining demo: builds the paper's Figure 1 topologies (chain,
// ring, mesh, 2-D torus), routes traffic to every cube, and reports how the
// network shape changes request latency.
//
// Usage: ./examples/chained_topologies [requests_per_cube]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

using namespace hmcsim;

namespace {

void explore(const char* name, Topology topo, u32 links, u64 requests) {
  SimConfig sc;
  sc.num_devices = topo.num_devices();
  DeviceConfig dc;
  dc.num_links = links;
  dc.model_data = false;
  sc.device = dc;

  Simulator sim;
  std::string diag;
  if (!ok(sim.init(sc, std::move(topo), &diag))) {
    std::fprintf(stderr, "%s: init failed: %s\n", name, diag.c_str());
    return;
  }

  std::printf("\n== %s: %u cubes, host ports:", name, sim.num_devices());
  for (const auto& hp : sim.topology().host_ports()) {
    std::printf(" %u:%u", hp.dev, hp.link);
  }
  std::printf(" ==\n");
  std::printf("%6s %6s %12s %12s\n", "cube", "hops", "lat_mean", "lat_max");

  // Measure per-cube latency separately so the topology's distance
  // structure is visible.
  for (u32 cub = 0; cub < sim.num_devices(); ++cub) {
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = requests;
    dcfg.target_cub = cub;
    dcfg.max_cycles = 10u * 1000 * 1000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    std::printf("%6u %6u %12.1f %12llu%s\n", cub,
                *sim.topology().host_distance(CubeId{cub}), r.latency.mean(),
                static_cast<unsigned long long>(r.latency.max),
                r.completed == requests ? "" : "  (INCOMPLETE)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const u64 requests = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 4096;
  std::string err;

  explore("chain of 4", make_chain(4, 4, 2, 1, &err), 4, requests);
  explore("ring of 6", make_ring(6, 4, 2, &err), 4, requests);
  explore("2x3 mesh", make_mesh(2, 3, 4, 2, &err), 4, requests);
  explore("2x3 torus", make_torus2d(2, 3, 8, 2, &err), 8, requests);

  std::printf("\nNote how latency tracks the host-hop depth column: chaining "
              "buys capacity at a\nper-hop latency cost, and wraparound "
              "links (torus) flatten the distance profile.\n");
  return 0;
}
