// Near-memory compute demo using Custom Memory Cube (CMC) commands.
//
// The HMC's coupled logic/memory package invites pushing simple
// read-modify-write operations into the cube instead of shuttling data to
// the host — the processing-in-memory direction the paper's Goblin-Core64
// context pursues.  This example builds a histogram over a random data
// stream two ways and compares cycles and link traffic:
//
//   host-side : RD16 bucket, increment on the host, WR16 it back
//               (two packets + a round trip per update, plus a data hazard
//                on every bucket collision), vs.
//   CMC       : one posted FETCH_ADD-style custom command per update.
//
// Usage: ./examples/near_memory_compute [updates]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hpp"
#include "core/simulator.hpp"

using namespace hmcsim;

namespace {

constexpr u8 kPostedAdd64 = 0x04;  // reserved encoding for our CMC add
constexpr u64 kBuckets = 512;
constexpr u64 kHistBase = 0x40000;

u64 bucket_addr(u64 bucket) { return kHistBase + bucket * 16; }

u64 run_host_side(u64 updates) {
  Simulator sim;
  DeviceConfig dc;
  if (!ok(sim.init_simple(dc))) return 0;

  SplitMix64 rng(7);
  const Cycle start = sim.now();
  PacketBuffer pkt, rsp;
  for (u64 i = 0; i < updates; ++i) {
    const u64 addr = bucket_addr(rng.next_below(kBuckets));
    // Read the bucket...
    (void)build_memrequest(0, addr, 1, Command::Rd16, 0, {}, pkt);
    while (sim.send(0, 0, pkt) == Status::Stalled) sim.clock();
    while (!ok(sim.recv(0, 0, rsp))) sim.clock();
    u64 value[2] = {rsp.payload()[0] + 1, 0};  // ...increment on the host...
    // ...write it back (must complete before the next update to the same
    // bucket may read, so we wait for the response).
    (void)build_memrequest(0, addr, 2, Command::Wr16, 0, value, pkt);
    while (sim.send(0, 0, pkt) == Status::Stalled) sim.clock();
    while (!ok(sim.recv(0, 0, rsp))) sim.clock();
  }
  return sim.now() - start;
}

u64 run_cmc(u64 updates, Simulator& sim) {
  DeviceConfig dc;
  if (!ok(sim.init_simple(dc))) return 0;

  CustomCommandDef add;
  add.name = "P_ADD64_CMC";
  add.request_flits = 2;   // 16B operand
  add.response_flits = 0;  // posted: fire-and-forget
  add.access_bytes = 16;
  add.handler = [](std::span<u64> memory, std::span<const u64> operand,
                   std::span<u64>) { memory[0] += operand[0]; };
  if (!ok(sim.register_custom_command(kPostedAdd64, add))) return 0;

  SplitMix64 rng(7);
  const Cycle start = sim.now();
  PacketBuffer pkt;
  const u64 operand[2] = {1, 0};
  for (u64 i = 0; i < updates; ++i) {
    const u64 addr = bucket_addr(rng.next_below(kBuckets));
    (void)build_custom_request(sim.custom_commands(), kPostedAdd64, 0, addr,
                               0, static_cast<u32>(i % 4), operand, pkt);
    while (sim.send(0, static_cast<u32>(i % 4), pkt) == Status::Stalled) {
      sim.clock();
    }
  }
  // Let the posted updates drain through the vaults.
  while (!sim.quiescent()) sim.clock();
  return sim.now() - start;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 updates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 4096;

  std::printf("histogram of %llu updates over %llu buckets\n\n",
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(kBuckets));

  const u64 host_cycles = run_host_side(updates);
  std::printf("host-side RMW : %10llu cycles (%.2f cycles/update)\n",
              static_cast<unsigned long long>(host_cycles),
              static_cast<double>(host_cycles) /
                  static_cast<double>(updates));

  Simulator cmc_sim;
  const u64 cmc_cycles = run_cmc(updates, cmc_sim);
  std::printf("CMC in-memory : %10llu cycles (%.2f cycles/update)\n",
              static_cast<unsigned long long>(cmc_cycles),
              static_cast<double>(cmc_cycles) /
                  static_cast<double>(updates));
  std::printf("\nspeedup: %.1fx — one posted 2-FLIT packet per update "
              "instead of a serialized\nread/modify/write round trip, and "
              "the bucket-collision hazard moves into the\nvault where bank "
              "ordering already enforces it.\n",
              static_cast<double>(host_cycles) /
                  static_cast<double>(cmc_cycles ? cmc_cycles : 1));

  // Cross-check: the histogram total must equal the update count.
  u64 total = 0;
  for (u64 b = 0; b < kBuckets; ++b) {
    u64 word = 0;
    (void)cmc_sim.device(0).store.read_words(bucket_addr(b), {&word, 1});
    total += word;
  }
  std::printf("\nhistogram checksum: %llu/%llu %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(updates),
              total == updates ? "(exact)" : "(MISMATCH!)");
  return total == updates ? 0 : 1;
}
