// Access pattern study: how the HMC's three-dimensional structure responds
// to the memory access patterns real applications produce — the use case
// the paper's introduction motivates ("insightful guidance in designing and
// developing highly efficient systems, algorithms, and applications").
//
// Runs stream, strided, hot-spotted, pointer-chase and uniform random
// traffic against one device and compares throughput, conflicts, and
// latency.
//
// Usage: ./examples/access_patterns [requests]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/report.hpp"
#include "core/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

using namespace hmcsim;

namespace {

void run_pattern(const char* label, Generator& gen, u64 requests,
                 u32 max_outstanding = 512) {
  DeviceConfig dc;  // 4-link / 8-bank / 2 GB
  dc.model_data = false;
  Simulator sim;
  std::string diag;
  if (!ok(sim.init_simple(dc, &diag))) {
    std::fprintf(stderr, "init failed: %s\n", diag.c_str());
    return;
  }
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.max_outstanding_per_port = max_outstanding;
  dcfg.max_cycles = 100u * 1000 * 1000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  const DeviceStats s = sim.total_stats();
  std::printf("%-14s %10llu cycles  %8.2f req/cyc  %10llu conflicts  "
              "lat %7.1f  %7.1f GB/s\n",
              label, static_cast<unsigned long long>(r.cycles),
              static_cast<double>(r.completed) /
                  static_cast<double>(r.cycles ? r.cycles : 1),
              static_cast<unsigned long long>(s.bank_conflicts),
              r.latency.mean(),
              effective_bandwidth_gbs(s.retired() * u64{64}, r.cycles));
}

}  // namespace

int main(int argc, char** argv) {
  const u64 requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (u64{1} << 16);

  GeneratorConfig gc;
  gc.capacity_bytes = u64{2} << 30;
  gc.request_bytes = 64;
  gc.read_fraction = 0.5;

  std::printf("access pattern comparison, %llu x 64B requests, "
              "4-link/8-bank/2GB device\n\n",
              static_cast<unsigned long long>(requests));

  {
    StreamGenerator gen(gc);
    run_pattern("stream", gen, requests);
  }
  {
    // Stride of exactly one vault-rotation: consecutive requests hammer the
    // SAME vault — the adversarial case for the low-interleave map.
    StrideGenerator gen(gc, u64{64} * 16);
    run_pattern("stride(vault)", gen, requests);
  }
  {
    StrideGenerator gen(gc, 4096 + 64);
    run_pattern("stride(4K+64)", gen, requests);
  }
  {
    HotspotGenerator gen(gc, /*hot_fraction=*/0.9,
                         /*hot_bytes=*/u64{64} * 1024);
    run_pattern("hotspot90/64K", gen, requests);
  }
  {
    PointerChaseGenerator gen(gc);
    // Dependent loads: only one outstanding request at a time.
    run_pattern("ptr-chase", gen, requests / 16, /*max_outstanding=*/1);
  }
  {
    RandomAccessGenerator gen(gc);
    run_pattern("random", gen, requests);
  }

  std::printf("\nreading the table: streams and non-resonant strides spread "
              "across all vaults and\nsustain peak throughput; a "
              "vault-aligned stride defeats the low-interleave map "
              "and\nserializes on a single vault (~8x slower); hotspots "
              "lose throughput to bank\ncontention; pointer chasing exposes "
              "the raw round-trip latency because nothing\noverlaps.  (The "
              "conflict column counts stage-3 queued-conflict recognitions "
              "per cycle\n— queue pressure, not distinct collisions.)\n");
  return 0;
}
