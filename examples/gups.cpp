// GUPS (Giga-Updates Per Second) on an HMC device.
//
// The RandomAccess/GUPS kernel — read-modify-write XOR updates at random
// table locations — is the canonical workload for high-bandwidth random
// memory, and exactly the application class the paper's introduction
// motivates for stacked memory.  Run it three ways and compare:
//
//   host-rmw   : RD16 + WR16 per update, one in flight per "thread"
//   host-deep  : the same, but 512 updates in flight (MSHR-style overlap);
//                note this relaxes atomicity across colliding updates
//   device-amo : one 2ADD8 atomic per update (in-memory update; HMC's
//                native read-modify-write commands)
//
// Usage: ./examples/gups [updates] [table_mb]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hpp"
#include "core/memory_system.hpp"

using namespace hmcsim;

namespace {

struct GupsResult {
  Cycle cycles{0};
  u64 updates{0};

  [[nodiscard]] double gups(double clock_ghz = 1.25) const {
    if (cycles == 0) return 0.0;
    // updates / seconds = updates / (cycles / (clock * 1e9)); report as
    // billions per second.
    return static_cast<double>(updates) * clock_ghz /
           static_cast<double>(cycles);
  }
};

GupsResult run_host_rmw(u64 updates, u64 table_bytes, usize window) {
  DeviceConfig dc;
  MemorySystem mem(dc);
  SplitMix64 rng(2026);
  const u64 slots = table_bytes / 16;
  const Cycle start = mem.now();

  u64 issued = 0, completed = 0;
  while (completed < updates) {
    while (issued - completed < window && issued < updates) {
      const u64 addr = rng.next_below(slots) * 16;
      const u64 key = rng.next();
      // Read, then write back xor-ed — the classic two-packet update.
      (void)mem.read(addr, 16, [&mem, &completed, addr,
                                key](const MemTransaction& t) {
        const u64 data[2] = {t.data[0] ^ key, t.data[1]};
        (void)mem.write(addr, 16, data, [&completed](const MemTransaction&) {
          ++completed;
        });
      });
      ++issued;
    }
    mem.tick();
  }
  (void)mem.drain();
  return {mem.now() - start, updates};
}

GupsResult run_device_amo(u64 updates, u64 table_bytes) {
  DeviceConfig dc;
  Simulator sim;
  (void)sim.init_simple(dc);
  SplitMix64 rng(2026);
  const u64 slots = table_bytes / 16;
  const Cycle start = sim.now();

  PacketBuffer pkt;
  u64 sent = 0, completed = 0;
  while (completed < updates) {
    while (sent < updates) {
      const u64 addr = rng.next_below(slots) * 16;
      const u64 operand[2] = {rng.next(), 0};
      (void)build_memrequest(0, addr, static_cast<Tag>(sent % 512),
                             Command::TwoAdd8,
                             static_cast<u32>(sent % 4), operand, pkt);
      if (sim.send(0, static_cast<u32>(sent % 4), pkt) != Status::Ok) break;
      ++sent;
    }
    for (u32 l = 0; l < 4; ++l) {
      while (ok(sim.recv(0, l, pkt))) ++completed;
    }
    sim.clock();
  }
  return {sim.now() - start, updates};
}

}  // namespace

int main(int argc, char** argv) {
  const u64 updates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (u64{1} << 15);
  const u64 table_mb = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 256;
  const u64 table_bytes = table_mb << 20;

  std::printf("GUPS: %llu random 16B updates over a %llu MiB table "
              "(4-link/8-bank/2GB cube)\n\n",
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(table_mb));

  const GupsResult serial = run_host_rmw(updates, table_bytes, 1);
  std::printf("host-rmw (serial)   %10llu cycles   %.4f GUPS\n",
              static_cast<unsigned long long>(serial.cycles),
              serial.gups());

  const GupsResult deep = run_host_rmw(updates, table_bytes, 512);
  std::printf("host-rmw (512-deep) %10llu cycles   %.4f GUPS\n",
              static_cast<unsigned long long>(deep.cycles), deep.gups());

  const GupsResult amo = run_device_amo(updates, table_bytes);
  std::printf("device atomics      %10llu cycles   %.4f GUPS\n",
              static_cast<unsigned long long>(amo.cycles), amo.gups());

  std::printf("\nthe in-memory atomic path does one packet per update and "
              "keeps the\nread-modify-write inside the vault, so it beats "
              "even the deeply pipelined host\nloop — and unlike host-rmw "
              "overlap, colliding updates stay atomic.\n");
  return 0;
}
