// The paper's random-access memory test harness (§VI.A), runnable against
// any of the four Table I device configurations.
//
// Usage: ./examples/random_access [config] [requests] [--json]
//   config   : a | b | c | d
//              a = 4-link/ 8-bank/2GB    b = 4-link/16-bank/4GB
//              c = 8-link/ 8-bank/4GB    d = 8-link/16-bank/8GB
//   requests : number of 64-byte requests (default 1<<18)
//
// Prints the simulated runtime in clock cycles plus the contention trace
// counters the paper's Figure 5 visualizes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <iostream>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "core/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  char which = 'a';
  u64 requests = u64{1} << 18;
  bool json = false;
  if (argc > 1) which = static_cast<char>(std::tolower(argv[1][0]));
  if (argc > 2) requests = std::strtoull(argv[2], nullptr, 0);
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }

  DeviceConfig dc;
  std::string label;
  switch (which) {
    case 'a': dc = table1_config_4link_8bank();  label = "4-Link; 8-Bank; 2GB";  break;
    case 'b': dc = table1_config_4link_16bank(); label = "4-Link; 16-Bank; 4GB"; break;
    case 'c': dc = table1_config_8link_8bank();  label = "8-Link; 8-Bank; 4GB";  break;
    case 'd': dc = table1_config_8link_16bank(); label = "8-Link; 16-Bank; 8GB"; break;
    default:
      std::fprintf(stderr, "unknown config '%c' (want a|b|c|d)\n", which);
      return 1;
  }
  // Random runs touch the whole address space; skip data modelling so the
  // resident set stays small (see DESIGN.md, substitutions).
  dc.model_data = false;

  Simulator sim;
  std::string diag;
  if (!ok(sim.init_simple(dc, &diag))) {
    std::fprintf(stderr, "init failed: %s\n", diag.c_str());
    return 1;
  }

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = 64;
  gc.read_fraction = 0.5;  // the paper's 50/50 mix
  RandomAccessGenerator gen(gc);

  DriverConfig drv;
  drv.total_requests = requests;
  HostDriver driver(sim, gen, drv);

  std::printf("config   : %s\n", label.c_str());
  std::printf("requests : %llu x 64B (50/50 read/write, glibc LCG)\n",
              static_cast<unsigned long long>(requests));

  const DriverResult result = driver.run();
  const DeviceStats stats = sim.total_stats();

  std::printf("\nsimulated runtime    : %llu clock cycles\n",
              static_cast<unsigned long long>(result.cycles));
  std::printf("requests completed   : %llu (%llu errors)\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.errors));
  std::printf("reads / writes       : %llu / %llu\n",
              static_cast<unsigned long long>(stats.reads),
              static_cast<unsigned long long>(stats.writes));
  std::printf("bank conflicts       : %llu\n",
              static_cast<unsigned long long>(stats.bank_conflicts));
  std::printf("xbar request stalls  : %llu\n",
              static_cast<unsigned long long>(stats.xbar_rqst_stalls));
  std::printf("latency penalties    : %llu\n",
              static_cast<unsigned long long>(stats.latency_penalties));
  std::printf("host send stalls     : %llu\n",
              static_cast<unsigned long long>(result.send_stalls));
  std::printf("request latency      : mean %.1f, min %llu, max %llu cycles\n",
              result.latency.mean(),
              static_cast<unsigned long long>(result.latency.min),
              static_cast<unsigned long long>(result.latency.max));
  std::printf("effective bandwidth  : %.1f GB/s (data payload at 1.25 GHz)\n",
              effective_bandwidth_gbs(
                  (stats.reads + stats.writes) * u64{64}, result.cycles));
  if (json) {
    std::printf("\nmachine-readable report:\n");
    write_stats_json(std::cout, sim);
  }
  return result.completed == requests ? 0 : 1;
}
