// NUMA / multi-channel demo: several independent HMC-Sim objects per host.
//
// "An application may contain more than one HMC-Sim object in order to
// simulate architectural characteristics such as non-uniform memory
// access.  ...  This is analogous to the current system on chip
// methodology of utilizing multiple memory channels per socket."
// (paper §IV.A / §IV.C)
//
// Two cubes behind two channels: the near channel is driven every host
// step; the far channel sits behind a fixed interconnect delay the host
// model adds before injecting and after receiving.  Each simulator keeps
// its own clock domain — they are never ticked in lockstep.
//
// Usage: ./examples/numa_channels [requests_per_channel]
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "common/random.hpp"
#include "core/simulator.hpp"

using namespace hmcsim;

namespace {

/// One memory channel: an independent simulator plus the socket-side
/// interconnect delay to reach it.
struct Channel {
  const char* name;
  Simulator sim;
  Cycle interconnect_delay;

  // Socket-side delay lines modelling the extra hop distance.
  struct Pending {
    Cycle due;
    PacketBuffer pkt;
  };
  std::deque<Pending> outbound;  // host -> channel
  Cycle host_clock{0};

  u64 sent{0}, completed{0};
  Cycle latency_sum{0};
  std::array<Cycle, 512> sent_at{};
};

void step(Channel& ch) {
  // Deliver delayed outbound packets whose interconnect time has elapsed.
  while (!ch.outbound.empty() && ch.outbound.front().due <= ch.host_clock) {
    if (ch.sim.send(0, 0, ch.outbound.front().pkt) == Status::Stalled) break;
    ch.outbound.pop_front();
  }
  // Collect responses (they pay the interconnect delay on the way back,
  // accounted in the latency arithmetic below).
  PacketBuffer pkt;
  while (ok(ch.sim.recv(0, 0, pkt))) {
    ResponseFields f;
    if (ok(decode_response(pkt, f))) {
      ++ch.completed;
      ch.latency_sum += (ch.host_clock - ch.sent_at[f.tag]) +
                        2 * ch.interconnect_delay;
    }
  }
  // Each channel is its own clock domain (paper §IV.C): tick it on the
  // host's cadence, entirely independent of the other channel.
  ch.sim.clock();
  ++ch.host_clock;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 8192;

  Channel near{"near", {}, /*interconnect_delay=*/2, {}, 0, 0, 0, 0, {}};
  Channel far{"far", {}, /*interconnect_delay=*/40, {}, 0, 0, 0, 0, {}};
  DeviceConfig dc;
  dc.model_data = false;
  if (!ok(near.sim.init_simple(dc)) || !ok(far.sim.init_simple(dc))) {
    std::fprintf(stderr, "init failed\n");
    return 1;
  }

  std::printf("two independent HMC-Sim objects as NUMA channels, "
              "%llu reads each\n\n",
              static_cast<unsigned long long>(requests));

  SplitMix64 rng(13);
  for (Channel* ch : {&near, &far}) {
    while (ch->completed < requests) {
      if (ch->sent < requests && ch->sent - ch->completed < 256) {
        PacketBuffer pkt;
        const Tag tag = static_cast<Tag>(ch->sent % 512);
        (void)build_memrequest(0, rng.next_below(1u << 28) * 16, tag,
                               Command::Rd16, 0, {}, pkt);
        ch->sent_at[tag] = ch->host_clock;
        ch->outbound.push_back(
            {ch->host_clock + ch->interconnect_delay, pkt});
        ++ch->sent;
      }
      step(*ch);
    }
    std::printf("%-5s channel: %7llu host cycles, mean latency %6.1f "
                "(interconnect %llu each way)\n",
                ch->name,
                static_cast<unsigned long long>(ch->host_clock),
                static_cast<double>(ch->latency_sum) /
                    static_cast<double>(ch->completed),
                static_cast<unsigned long long>(ch->interconnect_delay));
  }

  // The two objects advanced independently — their device clocks differ
  // from each other and from the host's step count only by how the host
  // chose to drive them.
  std::printf("\nclock domains: near device @%llu, far device @%llu — "
              "each object keeps its own\n64-bit clock, advanced only by "
              "its own hmcsim_clock calls (paper §IV.C).\n",
              static_cast<unsigned long long>(near.sim.now()),
              static_cast<unsigned long long>(far.sim.now()));
  return 0;
}
